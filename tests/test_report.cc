/**
 * @file
 * Unit tests for the result-table writers (text/CSV/JSON) and the
 * stats flattener.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "expect_throw.hh"
#include "report/table.hh"

using namespace wsl;

namespace {

Table
sample()
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "2.5"});
    return t;
}

} // namespace

TEST(Table, Dimensions)
{
    const Table t = sample();
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numColumns(), 2u);
}

TEST(TableErrors, RowWidthMismatchThrows)
{
    Table t({"a", "b"});
    WSL_EXPECT_THROW_MSG(t.addRow({"only-one"}), InternalError, "width");
}

TEST(TableErrors, EmptyHeaderThrows)
{
    WSL_EXPECT_THROW_MSG(Table{std::vector<std::string>{}},
                         InternalError, "column");
}

TEST(Table, TextOutputIsAligned)
{
    std::ostringstream os;
    sample().writeText(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name   value"), std::string::npos);
    EXPECT_NE(out.find("alpha  1"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    std::ostringstream os;
    sample().writeCsv(os);
    EXPECT_EQ(os.str(), "name,value\nalpha,1\nbeta,2.5\n");
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    Table t({"k"});
    t.addRow({"a,b"});
    t.addRow({"say \"hi\""});
    t.addRow({"line\nbreak"});
    std::ostringstream os;
    t.writeCsv(os);
    EXPECT_EQ(os.str(),
              "k\n\"a,b\"\n\"say \"\"hi\"\"\"\n\"line\nbreak\"\n");
}

TEST(Table, JsonOutputParsesShape)
{
    std::ostringstream os;
    sample().writeJson(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("{\"name\": \"alpha\", \"value\": \"1\"}"),
              std::string::npos);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out[out.size() - 2], ']');
}

TEST(Table, JsonEscapesQuotesAndBackslashes)
{
    Table t({"k"});
    t.addRow({"a\"b\\c"});
    std::ostringstream os;
    t.writeJson(os);
    EXPECT_NE(os.str().find("a\\\"b\\\\c"), std::string::npos);
}

TEST(Table, NumFormatsWithPrecision)
{
    EXPECT_EQ(Table::num(1.23456), "1.235");
    EXPECT_EQ(Table::num(1.0, 1), "1.0");
    EXPECT_EQ(Table::num(-0.5, 2), "-0.50");
}

namespace {

/** Parse RFC-4180 CSV back into rows of fields. */
std::vector<std::vector<std::string>>
parseCsv(const std::string &text)
{
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string field;
    bool quoted = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < text.size() && text[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            row.push_back(std::move(field));
            field.clear();
        } else if (c == '\n') {
            row.push_back(std::move(field));
            field.clear();
            rows.push_back(std::move(row));
            row.clear();
        } else {
            field += c;
        }
    }
    return rows;
}

} // namespace

TEST(Table, CsvRoundTripsThroughParser)
{
    Table t({"name", "payload"});
    t.addRow({"plain", "value"});
    t.addRow({"comma", "a,b"});
    t.addRow({"quote", "say \"hi\""});
    t.addRow({"newline", "two\nlines"});
    std::ostringstream os;
    t.writeCsv(os);

    const auto rows = parseCsv(os.str());
    ASSERT_EQ(rows.size(), 5u);  // header + 4
    EXPECT_EQ(rows[0], (std::vector<std::string>{"name", "payload"}));
    EXPECT_EQ(rows[1][1], "value");
    EXPECT_EQ(rows[2][1], "a,b");
    EXPECT_EQ(rows[3][1], "say \"hi\"");
    EXPECT_EQ(rows[4][1], "two\nlines");
}

TEST(Table, JsonRoundTripKeepsKeyValuePairs)
{
    Table t({"k", "v"});
    t.addRow({"x", "1"});
    t.addRow({"esc\"aped", "back\\slash"});
    std::ostringstream os;
    t.writeJson(os);
    const std::string out = os.str();
    // Structural sanity: one object per row inside one array.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'), 2);
    EXPECT_EQ(std::count(out.begin(), out.end(), '}'), 2);
    EXPECT_NE(out.find("\"k\": \"x\""), std::string::npos);
    EXPECT_NE(out.find("\"k\": \"esc\\\"aped\""), std::string::npos);
    EXPECT_NE(out.find("\"v\": \"back\\\\slash\""), std::string::npos);
}

TEST(FlattenStats, ContainsCoreMetrics)
{
    GpuStats s;
    s.cycles = 100;
    s.warpInstsIssued = 250;
    s.l1Accesses = 10;
    s.l1Misses = 5;
    const auto flat = flattenStats(s);
    auto find = [&](const std::string &name) -> double {
        for (const auto &[k, v] : flat)
            if (k == name)
                return v;
        ADD_FAILURE() << "missing metric " << name;
        return -1;
    };
    EXPECT_DOUBLE_EQ(find("cycles"), 100.0);
    EXPECT_DOUBLE_EQ(find("ipc"), 2.5);
    EXPECT_DOUBLE_EQ(find("l1_miss_rate"), 0.5);
    EXPECT_DOUBLE_EQ(find("stall_LongMemoryLatency"), 0.0);
}

TEST(FlattenStats, OneEntryPerStallKind)
{
    const auto flat = flattenStats(GpuStats{});
    unsigned stalls = 0;
    for (const auto &[k, v] : flat)
        stalls += k.rfind("stall_", 0) == 0;
    EXPECT_EQ(stalls, numStallKinds);
}
