/**
 * @file
 * Unit tests for multi-dimensional resource vectors and the SM
 * resource pool.
 */

#include <gtest/gtest.h>

#include "expect_throw.hh"
#include "sm/resources.hh"
#include "workloads/benchmarks.hh"

using namespace wsl;

TEST(ResourceVec, Arithmetic)
{
    const ResourceVec a{100, 200, 300, 2};
    const ResourceVec b{10, 20, 30, 1};
    EXPECT_EQ(a + b, (ResourceVec{110, 220, 330, 3}));
    EXPECT_EQ(a - b, (ResourceVec{90, 180, 270, 1}));
    EXPECT_EQ(b.scaled(3), (ResourceVec{30, 60, 90, 3}));
    EXPECT_EQ(a.dividedBy(2), (ResourceVec{50, 100, 150, 1}));
}

TEST(ResourceVec, FitsInChecksEveryDimension)
{
    const ResourceVec cap{100, 100, 100, 4};
    EXPECT_TRUE((ResourceVec{100, 100, 100, 4}).fitsIn(cap));
    EXPECT_FALSE((ResourceVec{101, 0, 0, 0}).fitsIn(cap));
    EXPECT_FALSE((ResourceVec{0, 101, 0, 0}).fitsIn(cap));
    EXPECT_FALSE((ResourceVec{0, 0, 101, 0}).fitsIn(cap));
    EXPECT_FALSE((ResourceVec{0, 0, 0, 5}).fitsIn(cap));
}

TEST(ResourceVec, OfCtaUsesWarpGranularThreads)
{
    // NN's 169-thread blocks occupy 6 warps = 192 thread slots.
    const ResourceVec v = ResourceVec::ofCta(benchmark("NN"));
    EXPECT_EQ(v.threads, 192u);
    EXPECT_EQ(v.regs, 23u * 169u);
    EXPECT_EQ(v.ctas, 1u);
}

TEST(ResourceVec, CapacityMatchesConfig)
{
    const GpuConfig cfg = GpuConfig::baseline();
    const ResourceVec cap = ResourceVec::capacity(cfg);
    EXPECT_EQ(cap.regs, 32768u);
    EXPECT_EQ(cap.shm, 48u * 1024u);
    EXPECT_EQ(cap.threads, 1536u);
    EXPECT_EQ(cap.ctas, 8u);
}

TEST(ResourcePool, AllocateAndFree)
{
    ResourcePool pool({100, 100, 100, 4});
    EXPECT_TRUE(pool.tryAlloc({60, 10, 10, 1}));
    EXPECT_EQ(pool.usedVec(), (ResourceVec{60, 10, 10, 1}));
    EXPECT_FALSE(pool.tryAlloc({50, 0, 0, 1}));  // regs exhausted
    EXPECT_EQ(pool.usedVec(), (ResourceVec{60, 10, 10, 1}));
    pool.free({60, 10, 10, 1});
    EXPECT_EQ(pool.usedVec(), ResourceVec{});
    EXPECT_TRUE(pool.tryAlloc({100, 100, 100, 4}));
}

TEST(ResourcePool, FreeVec)
{
    ResourcePool pool({100, 100, 100, 4});
    pool.tryAlloc({40, 50, 60, 2});
    EXPECT_EQ(pool.freeVec(), (ResourceVec{60, 50, 40, 2}));
}

TEST(ResourcePool, CtaSlotLimitBinds)
{
    ResourcePool pool({1000, 1000, 1000, 2});
    EXPECT_TRUE(pool.tryAlloc({1, 1, 1, 1}));
    EXPECT_TRUE(pool.tryAlloc({1, 1, 1, 1}));
    EXPECT_FALSE(pool.tryAlloc({1, 1, 1, 1}));
}

TEST(ResourcePoolDeath, OverFreeThrows)
{
    ResourcePool pool({10, 10, 10, 1});
    WSL_EXPECT_THROW_MSG(pool.free({1, 0, 0, 0}), InternalError,
                         "freeing");
}

// ---- maxCtasPerSm limits (paper Section II-C: four launch limits) ----

struct MaxCtaCase
{
    const char *name;
    unsigned expected;
};

class BenchmarkMaxCtas : public ::testing::TestWithParam<MaxCtaCase>
{
};

TEST_P(BenchmarkMaxCtas, MatchesHandComputedLimit)
{
    const GpuConfig cfg = GpuConfig::baseline();
    EXPECT_EQ(benchmark(GetParam().name).maxCtasPerSm(cfg),
              GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, BenchmarkMaxCtas,
    ::testing::Values(MaxCtaCase{"BLK", 8},   // CTA-slot limited
                      MaxCtaCase{"BFS", 3},   // thread limited (512/CTA)
                      MaxCtaCase{"DXT", 8},
                      MaxCtaCase{"HOT", 6},   // thread limited (256/CTA)
                      MaxCtaCase{"IMG", 8},
                      MaxCtaCase{"KNN", 6},
                      MaxCtaCase{"LBM", 8},   // register limited (8.03)
                      MaxCtaCase{"MM", 8},
                      MaxCtaCase{"MVP", 8},
                      MaxCtaCase{"NN", 8}),
    [](const auto &info) { return info.param.name; });

TEST(MaxCtas, LargeResourceRaisesLimits)
{
    const GpuConfig large = GpuConfig::largeResource();
    // HOT: 2048 threads / 256 = 8 CTAs (was 6).
    EXPECT_EQ(benchmark("HOT").maxCtasPerSm(large), 8u);
    // BLK: regs 65536/3840 = 17, threads 2048/128 = 16 -> 16.
    EXPECT_EQ(benchmark("BLK").maxCtasPerSm(large), 16u);
}

TEST(MaxCtas, AtLeastOneEvenWhenOversized)
{
    KernelParams k = benchmark("BFS");
    k.blockDim = 4096;  // larger than an SM
    EXPECT_EQ(k.maxCtasPerSm(GpuConfig::baseline()), 1u);
}
