/**
 * @file
 * Unit tests for the deterministic RNG and mixing hash.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

using namespace wsl;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.range(13), 13u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.range(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) ~ 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ChanceZeroNeverFires)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(r.chance(0.0));
}

TEST(MixHash, Deterministic)
{
    EXPECT_EQ(mixHash(123, 456, 789), mixHash(123, 456, 789));
}

TEST(MixHash, SensitiveToEveryArgument)
{
    const std::uint64_t base = mixHash(1, 2, 3);
    EXPECT_NE(base, mixHash(2, 2, 3));
    EXPECT_NE(base, mixHash(1, 3, 3));
    EXPECT_NE(base, mixHash(1, 2, 4));
}

TEST(MixHash, SpreadsSequentialInputs)
{
    // Consecutive inputs should not produce consecutive outputs.
    std::set<std::uint64_t> buckets;
    for (std::uint64_t i = 0; i < 1000; ++i)
        buckets.insert(mixHash(i) % 64);
    EXPECT_EQ(buckets.size(), 64u);
}
