/**
 * @file
 * Serving-layer tests: admission-control decision paths, capped
 * exponential backoff (including shift-overflow attempts), SLO
 * deadline accounting and the outcome-conservation ledger, arrival
 * determinism in all three modes, seeded fault-plan properties, and
 * end-to-end runServe runs — clean and chaotic — that must be
 * byte-deterministic under a fixed seed, quarantine the faulting
 * tenant, and keep the other tenants' ledgers clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "check/sim_error.hh"
#include "expect_throw.hh"
#include "obs/json.hh"
#include "obs/report.hh"
#include "serve/admission.hh"
#include "serve/engine.hh"

using namespace wsl;

namespace {

/** Small characterization window so a full serve run stays cheap;
 *  the solo lookups land in the process-wide cache. */
constexpr Cycle kWindow = 20000;

TenantClass
probeClass()
{
    TenantClass cls;
    cls.name = "probe";
    cls.bench = "MM";
    cls.slackFactor = 2.0;
    cls.maxQueue = 2;
    cls.maxInFlight = 1;
    return cls;
}

ServeJob
probeJob()
{
    ServeJob job;
    job.tenant = 0;
    job.bench = "MM";
    job.arrival = 1000;
    job.estServiceCycles = 1000;
    job.deadline = 3000;  // arrival + slackFactor x estimate
    return job;
}

ServeOptions
smallServeOptions(std::uint64_t seed)
{
    ServeOptions so;
    so.cfg = GpuConfig();
    so.kind = PolicyKind::Dynamic;
    so.window = kWindow;
    so.seed = seed;
    so.arrivals.ratePer10k = 2.0;
    return resolveServeOptions(so);
}

std::string
sloJson(const ServeResult &r)
{
    std::ostringstream os;
    r.slo.writeJson(os);
    return os.str();
}

/** Per-class conservation: every arrival lands in exactly one
 *  terminal bucket, and the admitted sub-ledger closes too. */
void
expectLedgerConserved(const ServeResult &r)
{
    std::uint64_t total = 0;
    for (std::size_t t = 0; t < r.slo.numClasses(); ++t) {
        const ClassSlo &s = r.slo.of(static_cast<unsigned>(t));
        const std::uint64_t rejected = s.rejectedQueueFull +
                                       s.rejectedQuarantined +
                                       s.rejectedMalformed;
        EXPECT_EQ(s.arrivals, s.admitted + rejected)
            << "class " << t << ": arrivals leak past admission";
        EXPECT_EQ(s.admitted, s.completed + s.shed + s.timedOut +
                                  s.failed + s.pendingAtEnd)
            << "class " << t << ": admitted jobs leak";
        EXPECT_EQ(s.goodput + s.deadlineMiss, s.completed + s.timedOut)
            << "class " << t << ": deadline accounting leaks";
        total += s.arrivals;
    }
    EXPECT_EQ(total, r.jobs.size());
}

} // namespace

// ---- Admission control ----

TEST(ServeAdmission, DecisionPathsAreStructured)
{
    AdmissionController ctl({probeClass()});

    // Happy path: well-formed, unquarantined, queue space, feasible.
    EXPECT_TRUE(ctl.admit(probeJob(), 0, 0, 1).admitted);

    // Unknown kernel name: refused before any load accounting.
    ServeJob garbage = probeJob();
    garbage.bench = "__no_such_kernel__";
    AdmissionDecision d = ctl.admit(garbage, 0, 0, 1);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reason, RejectReason::Malformed);
    EXPECT_FALSE(isShedReason(d.reason));

    // Bounded queue at capacity.
    d = ctl.admit(probeJob(), 2, 0, 1);
    EXPECT_EQ(d.reason, RejectReason::QueueFull);

    // Deadline infeasible given the committed backlog: a shed, not a
    // reject — the request was well-formed, the service chose load.
    d = ctl.admit(probeJob(), 0, 10000, 2);
    EXPECT_EQ(d.reason, RejectReason::Infeasible);
    EXPECT_TRUE(isShedReason(d.reason));

    // Zero parallelism degrades to the full backlog as the wait.
    d = ctl.admit(probeJob(), 0, 1500, 0);
    EXPECT_EQ(d.reason, RejectReason::Infeasible);

    // Quarantine is sticky and beats every load consideration.
    ctl.quarantine(0);
    EXPECT_TRUE(ctl.quarantined(0));
    EXPECT_EQ(ctl.numQuarantined(), 1u);
    d = ctl.admit(probeJob(), 0, 0, 1);
    EXPECT_EQ(d.reason, RejectReason::Quarantined);
}

TEST(ServeAdmission, BackoffDelayIsCappedAndShiftSafe)
{
    EXPECT_EQ(backoffDelay(0, 100, 1000), 100u);
    EXPECT_EQ(backoffDelay(1, 100, 1000), 200u);
    EXPECT_EQ(backoffDelay(3, 100, 1000), 800u);
    EXPECT_EQ(backoffDelay(4, 100, 1000), 1000u);  // 1600 capped
    EXPECT_EQ(backoffDelay(40, 100, 1000), 1000u);

    // Degenerate knobs: no base means no backoff; a cap below the
    // base is raised to it.
    EXPECT_EQ(backoffDelay(9, 0, 1000), 0u);
    EXPECT_EQ(backoffDelay(0, 500, 100), 500u);

    // Attempts that would overflow the 64-bit shift saturate at the
    // cap instead of wrapping.
    const Cycle huge = std::numeric_limits<Cycle>::max();
    EXPECT_EQ(backoffDelay(63, 2, huge), huge);
    EXPECT_EQ(backoffDelay(200, 1, 12345), 12345u);
}

// ---- SLO accounting ----

TEST(ServeSlo, DeadlineAccountingAndOutcomeBuckets)
{
    SloTracker slo({probeClass()});

    ServeJob on_time = probeJob();
    on_time.outcome = JobOutcome::Completed;
    on_time.startCycle = 1200;
    on_time.finishCycle = 2500;
    on_time.deadlineMet = true;
    slo.recordOutcome(on_time);

    ServeJob late = probeJob();
    late.outcome = JobOutcome::Completed;
    late.startCycle = 2000;
    late.finishCycle = 5000;
    late.deadlineMet = false;
    slo.recordOutcome(late);

    ServeJob expired = probeJob();
    expired.outcome = JobOutcome::TimedOut;
    expired.finishCycle = 3000;
    slo.recordOutcome(expired);

    ServeJob refused = probeJob();
    refused.outcome = JobOutcome::Rejected;
    refused.reason = RejectReason::QueueFull;
    slo.recordOutcome(refused);

    ServeJob dropped = probeJob();
    dropped.outcome = JobOutcome::Shed;
    dropped.reason = RejectReason::Infeasible;
    slo.recordOutcome(dropped);

    ServeJob faulty = probeJob();
    faulty.outcome = JobOutcome::Failed;
    slo.recordOutcome(faulty);

    ServeJob stuck = probeJob();
    stuck.outcome = JobOutcome::Running;
    slo.recordOutcome(stuck);

    const ClassSlo &s = slo.of(0);
    EXPECT_EQ(s.arrivals, 7u);
    EXPECT_EQ(s.admitted, 6u);
    EXPECT_EQ(s.completed, 2u);
    EXPECT_EQ(s.goodput, 1u);
    EXPECT_EQ(s.deadlineMiss, 2u);  // the late finish + the timeout
    EXPECT_EQ(s.rejectedQueueFull, 1u);
    EXPECT_EQ(s.shed, 1u);
    EXPECT_EQ(s.timedOut, 1u);
    EXPECT_EQ(s.failed, 1u);
    EXPECT_EQ(s.pendingAtEnd, 1u);
    EXPECT_EQ(s.latency.count(), 2u);
    EXPECT_EQ(s.queueDelay.count(), 2u);

    // One class: Jain fairness is trivially perfect.
    EXPECT_DOUBLE_EQ(slo.fairnessIndex(), 1.0);
}

TEST(ServeSlo, JsonRoundTripsThroughTheReportRenderer)
{
    SloTracker slo(defaultTenantClasses());
    ServeJob job = probeJob();
    job.outcome = JobOutcome::Completed;
    job.deadlineMet = true;
    job.startCycle = 1100;
    job.finishCycle = 2000;
    slo.recordOutcome(job);

    std::ostringstream os;
    slo.writeJson(os);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(os.str(), doc, error)) << error;
    std::ostringstream rendered;
    ASSERT_TRUE(renderSloReport(doc, rendered, error)) << error;
    EXPECT_NE(rendered.str().find("ledger: ok"), std::string::npos);
    EXPECT_EQ(rendered.str().find("BROKEN"), std::string::npos);

    // A non-serve document is refused, not misrendered.
    ASSERT_TRUE(parseJson("{\"schema\":\"other\"}", doc, error));
    EXPECT_FALSE(renderSloReport(doc, rendered, error));
}

// ---- Arrival engine ----

TEST(ServeArrival, OpenLoopIsDeterministicAndHorizonBounded)
{
    const std::vector<TenantClass> classes = defaultTenantClasses();
    ArrivalConfig cfg;
    cfg.ratePer10k = 4.0;
    cfg.horizon = 200'000;

    ArrivalEngine a(classes, cfg, 99);
    ArrivalEngine b(classes, cfg, 99);
    std::vector<ArrivalSpec> sa, sb;
    while (a.peek())
        sa.push_back(a.pop());
    while (b.peek())
        sb.push_back(b.pop());

    ASSERT_FALSE(sa.empty());
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].cycle, sb[i].cycle);
        EXPECT_EQ(sa[i].tenant, sb[i].tenant);
        if (i)
            EXPECT_GE(sa[i].cycle, sa[i - 1].cycle);
        EXPECT_LT(sa[i].cycle, cfg.horizon);
        EXPECT_LT(sa[i].tenant, classes.size());
    }
}

TEST(ServeArrival, TraceReplaysSortedWithInputOrderTieBreak)
{
    const std::vector<TenantClass> classes = defaultTenantClasses();
    ArrivalConfig cfg;
    cfg.mode = ArrivalConfig::Mode::Trace;
    cfg.trace = {{50, 0, false}, {10, 1, false}, {50, 2, false}};

    ArrivalEngine eng(classes, cfg, 1);
    eng.injectMalformed(0, 5);

    ArrivalSpec s = eng.pop();
    EXPECT_EQ(s.cycle, 5u);
    EXPECT_TRUE(s.malformed);
    EXPECT_EQ(eng.pop().tenant, 1u);
    EXPECT_EQ(eng.pop().tenant, 0u);  // ties keep input order
    EXPECT_EQ(eng.pop().tenant, 2u);
    EXPECT_FALSE(eng.peek().has_value());

    cfg.trace = {{10, 7, false}};
    WSL_EXPECT_THROW_MSG(ArrivalEngine(classes, cfg, 1), ConfigError,
                         "names tenant");
}

TEST(ServeArrival, ClosedLoopSelfLimitsToItsPopulation)
{
    const std::vector<TenantClass> classes = {probeClass()};
    ArrivalConfig cfg;
    cfg.mode = ArrivalConfig::Mode::ClosedLoop;
    cfg.usersPerTenant = 2;
    cfg.meanThinkTime = 500;

    ArrivalEngine eng(classes, cfg, 5);
    ASSERT_TRUE(eng.peek().has_value());
    const Cycle first = eng.pop().cycle;
    EXPECT_GE(first, 1u);
    eng.pop();
    // The population is in flight: no third arrival until feedback.
    EXPECT_FALSE(eng.peek().has_value());

    eng.onJobDone(0, 10'000);
    ASSERT_TRUE(eng.peek().has_value());
    EXPECT_GT(eng.peek()->cycle, 10'000u);
}

// ---- Fault plans ----

TEST(ServeChaos, SeededPlanIsDeterministicAndWellFormed)
{
    const Cycle horizon = 80'000;
    const unsigned count = 9;
    const FaultPlan plan = FaultPlan::seeded(7, count, horizon, 3);
    const FaultPlan again = FaultPlan::seeded(7, count, horizon, 3);

    ASSERT_EQ(plan.faults.size(), count);
    ASSERT_EQ(again.faults.size(), count);
    std::vector<unsigned> perTenant(3, 0);
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
        const Fault &f = plan.faults[i];
        EXPECT_EQ(f.cycle, again.faults[i].cycle);
        EXPECT_EQ(f.tenant, again.faults[i].tenant);
        EXPECT_EQ(f.kind, again.faults[i].kind);
        // Margins keep faults off the cold start and the drain.
        EXPECT_GE(f.cycle, horizon / 8);
        EXPECT_LE(f.cycle, horizon * 7 / 8);
        if (i)
            EXPECT_GE(f.cycle, plan.faults[i - 1].cycle);
        ASSERT_LT(f.tenant, 3u);
        ++perTenant[f.tenant];
    }
    // One seeded victim draws most of the plan so the quarantine
    // threshold is reachable.
    EXPECT_GE(*std::max_element(perTenant.begin(), perTenant.end()),
              count / 2);

    EXPECT_TRUE(FaultPlan::seeded(7, 0, horizon, 3).empty());
    EXPECT_TRUE(FaultPlan::seeded(7, 4, 8, 3).empty());
}

// ---- End-to-end serving runs ----

TEST(Serve, CleanRunConservesOutcomesAndIsDeterministic)
{
    const ServeOptions so = smallServeOptions(21);
    const ServeResult first = runServe(so);
    const ServeResult second = runServe(so);

    EXPECT_EQ(first.invariantViolations, 0u);
    EXPECT_EQ(first.faultsInjected, 0u);
    EXPECT_GT(first.jobs.size(), 0u);
    std::uint64_t completed = 0;
    for (std::size_t t = 0; t < first.slo.numClasses(); ++t)
        completed += first.slo.of(static_cast<unsigned>(t)).completed;
    EXPECT_GT(completed, 0u);
    expectLedgerConserved(first);

    // Byte-identical reports: the run is a pure function of options.
    EXPECT_EQ(sloJson(first), sloJson(second));
    EXPECT_EQ(first.endCycle, second.endCycle);
    EXPECT_EQ(first.threadInsts, second.threadInsts);
}

TEST(Serve, ChaosQuarantinesTheFaultyTenantOnly)
{
    ServeOptions so = smallServeOptions(21);
    // Three faults on the interactive tenant (its quarantine
    // threshold) plus a malformed arrival for the batch tenant. The
    // fault cycles are early and overdue-firing, so each lands the
    // next time the victim is resident.
    so.chaos.faults = {{1000, 0, FaultKind::Recoverable},
                       {2000, 0, FaultKind::Recoverable},
                       {3000, 0, FaultKind::Stall},
                       {4000, 1, FaultKind::Malformed}};
    const ServeResult r = runServe(so);
    const ServeResult again = runServe(so);

    EXPECT_EQ(r.invariantViolations, 0u);
    expectLedgerConserved(r);

    // The victim crossed the threshold and was cut loose...
    ASSERT_EQ(r.quarantinedClasses.size(), 1u);
    EXPECT_EQ(r.quarantinedClasses[0], so.classes[0].name);
    EXPECT_TRUE(r.slo.of(0).quarantined);
    EXPECT_EQ(r.slo.of(0).faultsInjected, 3u);
    EXPECT_GE(r.restores, 1u);
    EXPECT_GE(r.snapshots, r.restores);

    // ...the malformed arrival was refused structurally...
    EXPECT_EQ(r.slo.of(1).rejectedMalformed, 1u);

    // ...and the unaffected tenants kept serving.
    for (unsigned t = 1; t < r.slo.numClasses(); ++t) {
        EXPECT_FALSE(r.slo.of(t).quarantined);
        EXPECT_GT(r.slo.of(t).completed, 0u) << "class " << t;
    }

    // Chaos runs are exactly as deterministic as clean ones.
    EXPECT_EQ(sloJson(r), sloJson(again));
    EXPECT_EQ(r.quarantinedClasses, again.quarantinedClasses);
    EXPECT_EQ(r.endCycle, again.endCycle);
}

TEST(Serve, ResolveServeOptionsIsIdempotent)
{
    ServeOptions a;
    a.window = kWindow;
    a = resolveServeOptions(a);
    const ServeOptions b = resolveServeOptions(a);

    EXPECT_EQ(a.horizon, b.horizon);
    EXPECT_EQ(a.quantum, b.quantum);
    EXPECT_EQ(a.backoffBase, b.backoffBase);
    EXPECT_EQ(a.backoffCap, b.backoffCap);
    EXPECT_EQ(a.stallPenalty, b.stallPenalty);
    EXPECT_EQ(a.drainGrace, b.drainGrace);
    EXPECT_EQ(a.maxBatch, b.maxBatch);
    EXPECT_EQ(a.classes.size(), b.classes.size());
    EXPECT_GT(a.horizon, 0u);
    EXPECT_GT(a.quantum, 0u);
    EXPECT_LE(a.maxBatch, maxConcurrentKernels);
    EXPECT_GE(a.maxBatch, 1u);
}
