/**
 * @file
 * Unit tests for the SM core driven standalone, with the test acting
 * as the memory system: CTA lifecycle, resource accounting, barriers,
 * scoreboard behavior, quotas, eviction, and scheduler variants.
 */

#include <gtest/gtest.h>

#include <memory>

#include "sm/sm_core.hh"
#include "workloads/benchmarks.hh"

using namespace wsl;

namespace {

/** Fixed-latency perfect memory behind the SM. */
class TestRig
{
  public:
    explicit TestRig(const GpuConfig &config = GpuConfig::baseline())
        : cfg(config), sm(config, 0)
    {
    }

    /** Advance one cycle, servicing memory with `mem_latency`. */
    void
    tick(Cycle mem_latency = 100)
    {
        sm.tick(now);
        auto &out = sm.outgoingRequests();
        for (const MemRequest &req : out) {
            if (!req.write)
                pending.push_back({req.line, req.sm,
                                   req.readyAt + mem_latency});
        }
        out.clear();
        for (std::size_t i = 0; i < pending.size();) {
            if (pending[i].readyAt <= now) {
                sm.deliverResponse(pending[i]);
                pending[i] = pending.back();
                pending.pop_back();
            } else {
                ++i;
            }
        }
        ++now;
    }

    void
    run(Cycle cycles, Cycle mem_latency = 100)
    {
        for (Cycle i = 0; i < cycles; ++i)
            tick(mem_latency);
    }

    GpuConfig cfg;
    SmCore sm;
    Cycle now = 0;
    std::vector<MemResponse> pending;
};

/** Small single-CTA kernel: pure ALU. */
KernelParams
aluKernel(unsigned iters = 10, unsigned dep = 4)
{
    KernelParams k;
    k.name = "ALU";
    k.gridDim = 64;
    k.blockDim = 64;
    k.regsPerThread = 16;
    k.mix = {.alu = 8, .sfu = 0, .ldGlobal = 0, .stGlobal = 0,
             .ldShared = 0, .stShared = 0, .depDist = dep,
             .barrierPerIter = false};
    k.loopIters = iters;
    k.mem = {MemPattern::Tile, 1024, 1};
    k.ifetchMissRate = 0.0;
    return k;
}

KernelParams
barrierKernel(unsigned iters = 4)
{
    KernelParams k = aluKernel(iters);
    k.name = "BARK";
    k.blockDim = 128;  // 4 warps so the barrier actually couples
    k.mix.barrierPerIter = true;
    return k;
}

KernelParams
loadKernel(unsigned iters = 6)
{
    KernelParams k = aluKernel(iters);
    k.name = "LD";
    k.mix = {.alu = 4, .sfu = 0, .ldGlobal = 2, .stGlobal = 1,
             .ldShared = 0, .stShared = 0, .depDist = 1,
             .barrierPerIter = false};
    k.mem = {MemPattern::Stream, 0, 1};
    return k;
}

struct Launched
{
    KernelParams params;
    KernelProgram program;
};

std::unique_ptr<Launched>
launch(TestRig &rig, KernelParams params, KernelId kid = 0,
       unsigned cta = 0)
{
    auto l = std::make_unique<Launched>();
    l->params = std::move(params);
    l->program = buildProgram(l->params);
    const bool ok = rig.sm.launchCta(kid, l->params, l->program, cta,
                                     Addr{1} << 36, rig.now);
    EXPECT_TRUE(ok);
    return l;
}

} // namespace

TEST(SmCore, LaunchConsumesResources)
{
    TestRig rig;
    auto k = launch(rig, aluKernel());
    const ResourceVec used = rig.sm.pool().usedVec();
    EXPECT_EQ(used.regs, 16u * 64u);
    EXPECT_EQ(used.threads, 64u);
    EXPECT_EQ(used.ctas, 1u);
    EXPECT_EQ(rig.sm.residentCtas(0), 1u);
    EXPECT_FALSE(rig.sm.idle());
}

TEST(SmCore, CtaRunsToCompletionAndFreesResources)
{
    TestRig rig;
    auto k = launch(rig, aluKernel());
    rig.run(5000);
    EXPECT_TRUE(rig.sm.idle());
    EXPECT_EQ(rig.sm.pool().usedVec(), ResourceVec{});
    EXPECT_EQ(rig.sm.residentCtas(0), 0u);
    ASSERT_EQ(rig.sm.completedCtaEvents().size(), 1u);
    EXPECT_EQ(rig.sm.completedCtaEvents()[0], 0);
    EXPECT_EQ(rig.sm.stats().ctasCompleted, 1u);
}

TEST(SmCore, ExecutesExactInstructionCount)
{
    TestRig rig;
    auto k = launch(rig, aluKernel(10));
    rig.run(5000);
    // 2 warps x 8 insts x 10 iters.
    EXPECT_EQ(rig.sm.stats().warpInstsIssued, 2u * 8u * 10u);
    EXPECT_EQ(rig.sm.stats().threadInstsIssued, 2u * 8u * 10u * 32u);
}

TEST(SmCore, PartialLastWarpCountsActiveThreads)
{
    TestRig rig;
    KernelParams k = aluKernel(1);
    k.blockDim = 48;  // warp0: 32 threads, warp1: 16
    auto l = launch(rig, k);
    rig.run(2000);
    EXPECT_EQ(rig.sm.stats().threadInstsIssued, 8u * (32u + 16u));
}

TEST(SmCore, RejectsWhenCtaSlotsExhausted)
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.maxCtasPerSm = 2;
    TestRig rig(cfg);
    auto a = launch(rig, aluKernel(), 0, 0);
    auto b = launch(rig, aluKernel(), 0, 1);
    EXPECT_FALSE(rig.sm.canAcceptCta(a->params));
    KernelProgram prog = buildProgram(a->params);
    EXPECT_FALSE(rig.sm.launchCta(0, a->params, prog, 2, 0, rig.now));
}

TEST(SmCore, RejectsWhenRegistersExhausted)
{
    TestRig rig;
    KernelParams k = aluKernel();
    k.regsPerThread = 36;
    k.blockDim = 512;  // 18432 regs per CTA
    auto a = launch(rig, k, 0, 0);
    EXPECT_FALSE(rig.sm.canAcceptCta(k));  // 2nd would need 36864
}

TEST(SmCore, BarrierCouplesWarpProgress)
{
    // With a barrier per iteration, no warp may be a full iteration
    // ahead of its CTA siblings; the kernel still completes.
    TestRig rig;
    auto k = launch(rig, barrierKernel(6));
    rig.run(8000);
    EXPECT_TRUE(rig.sm.idle());
    EXPECT_EQ(rig.sm.stats().warpInstsIssued,
              4u * (8u + 1u) * 6u);  // 4 warps, body 8 + bar, 6 iters
}

TEST(SmCore, BarrierKernelWithSingleWarpDoesNotDeadlock)
{
    TestRig rig;
    KernelParams k = barrierKernel(3);
    k.blockDim = 32;
    auto l = launch(rig, k);
    rig.run(3000);
    EXPECT_TRUE(rig.sm.idle());
}

TEST(SmCore, LoadsGoOutAndCompleteOnResponse)
{
    TestRig rig;
    auto k = launch(rig, loadKernel(4));
    rig.run(8000, 150);
    EXPECT_TRUE(rig.sm.idle());
    const SmStats &s = rig.sm.stats();
    // 2 warps x (2 loads + 1 store) x 4 iters global accesses.
    EXPECT_EQ(s.l1Accesses, 2u * 3u * 4u);
    EXPECT_GT(s.l1Misses, 0u);
}

TEST(SmCore, MemoryLatencySlowsExecution)
{
    auto run_with_latency = [](Cycle lat) {
        TestRig rig;
        auto k = launch(rig, loadKernel(6));
        Cycle cycles = 0;
        while (!rig.sm.idle() && cycles < 50000) {
            rig.tick(lat);
            ++cycles;
        }
        return cycles;
    };
    const Cycle fast = run_with_latency(20);
    const Cycle slow = run_with_latency(800);
    EXPECT_LT(fast, slow);
    EXPECT_GT(slow, 800u);  // at least one serialized round trip
}

TEST(SmCore, StoresDoNotBlockCompletion)
{
    // Stores are fire-and-forget: the kernel finishes even if writes
    // are never acknowledged.
    TestRig rig;
    KernelParams k = aluKernel(3);
    k.mix.stGlobal = 2;
    k.mem = {MemPattern::Stream, 0, 1};
    auto l = launch(rig, k);
    rig.run(4000);
    EXPECT_TRUE(rig.sm.idle());
}

TEST(SmCore, QuotaAccessors)
{
    TestRig rig;
    EXPECT_EQ(rig.sm.quota(0), -1);
    rig.sm.setQuota(0, 3);
    rig.sm.setQuota(1, 0);
    EXPECT_EQ(rig.sm.quota(0), 3);
    EXPECT_EQ(rig.sm.quota(1), 0);
    rig.sm.clearQuotas();
    EXPECT_EQ(rig.sm.quota(0), -1);
    EXPECT_EQ(rig.sm.quota(1), -1);
}

TEST(SmCore, EvictKernelFreesEverything)
{
    TestRig rig;
    auto a = launch(rig, aluKernel(1000), 0, 0);
    auto b = launch(rig, aluKernel(1000), 1, 1);
    rig.run(50);
    EXPECT_EQ(rig.sm.residentCtas(0), 1u);
    EXPECT_EQ(rig.sm.residentCtas(1), 1u);
    rig.sm.evictKernel(0);
    EXPECT_EQ(rig.sm.residentCtas(0), 0u);
    EXPECT_EQ(rig.sm.residentCtas(1), 1u);
    EXPECT_EQ(rig.sm.pool().usedVec().ctas, 1u);
    // The survivor still completes.
    rig.run(200000);
    EXPECT_TRUE(rig.sm.idle());
}

TEST(SmCore, EvictionWithOutstandingLoadsIsSafe)
{
    TestRig rig;
    auto k = launch(rig, loadKernel(50));
    rig.run(30, 500);  // loads in flight
    rig.sm.evictKernel(0);
    // Slot reuse while the old responses are still pending.
    auto k2 = launch(rig, loadKernel(5), 1, 0);
    rig.run(10000, 500);
    EXPECT_TRUE(rig.sm.idle());
    EXPECT_EQ(rig.sm.pool().usedVec(), ResourceVec{});
}

TEST(SmCore, TwoKernelsShareOneSm)
{
    TestRig rig;
    auto a = launch(rig, aluKernel(20), 0, 0);
    auto b = launch(rig, loadKernel(10), 1, 1);
    rig.run(20000);
    EXPECT_TRUE(rig.sm.idle());
    const SmStats &s = rig.sm.stats();
    EXPECT_EQ(s.kernelWarpInsts[0], 2u * 8u * 20u);
    EXPECT_EQ(s.kernelWarpInsts[1], 2u * 7u * 10u);
    EXPECT_EQ(s.warpInstsIssued,
              s.kernelWarpInsts[0] + s.kernelWarpInsts[1]);
}

TEST(SmCore, GtoFavorsOldWarpsLrrRotates)
{
    // Same workload under both schedulers completes with identical
    // instruction counts but different interleavings (cycle counts
    // may differ).
    auto run_sched = [](SchedulerKind kind) {
        GpuConfig cfg = GpuConfig::baseline();
        cfg.scheduler = kind;
        TestRig rig(cfg);
        auto a = launch(rig, aluKernel(50, 1), 0, 0);
        Cycle cycles = 0;
        while (!rig.sm.idle() && cycles < 100000) {
            rig.tick();
            ++cycles;
        }
        EXPECT_EQ(rig.sm.stats().warpInstsIssued, 2u * 8u * 50u);
        return cycles;
    };
    EXPECT_GT(run_sched(SchedulerKind::Gto), 0u);
    EXPECT_GT(run_sched(SchedulerKind::Lrr), 0u);
}

TEST(SmCore, StallAccountingCoversAllCycles)
{
    TestRig rig;
    auto k = launch(rig, loadKernel(20));
    rig.run(3000, 400);
    const SmStats &s = rig.sm.stats();
    // Every scheduler-cycle either issued or recorded a stall.
    EXPECT_EQ(s.warpInstsIssued + s.stallTotal(),
              s.cycles * rig.cfg.numSchedulers);
}

TEST(SmCore, RawHazardsForceSerialExecution)
{
    // depDist 1 with ALU latency L: a lone warp cannot issue faster
    // than one instruction per L cycles once the i-buffer streams.
    GpuConfig cfg = GpuConfig::baseline();
    TestRig rig(cfg);
    KernelParams k = aluKernel(20, 1);
    k.blockDim = 32;  // one warp
    auto l = launch(rig, k);
    Cycle cycles = 0;
    while (!rig.sm.idle() && cycles < 100000) {
        rig.tick();
        ++cycles;
    }
    const std::uint64_t insts = 8u * 20u;
    EXPECT_GE(cycles, insts * (cfg.aluLatency - 2));
}

TEST(SmCore, IFetchMissesSlowFetchBoundKernels)
{
    auto run_missrate = [](double rate) {
        TestRig rig;
        KernelParams k = aluKernel(40, 8);
        k.ifetchMissRate = rate;
        auto l = launch(rig, k);
        Cycle cycles = 0;
        while (!rig.sm.idle() && cycles < 200000) {
            rig.tick();
            ++cycles;
        }
        return cycles;
    };
    EXPECT_LT(run_missrate(0.0), run_missrate(0.8));
}

TEST(SmCore, ShmConflictFactorSlowsSharedMemoryKernels)
{
    auto run_conflict = [](unsigned factor) {
        TestRig rig;
        KernelParams k = aluKernel(40, 2);
        k.mix.ldShared = 4;
        k.shmConflictFactor = factor;
        auto l = launch(rig, k);
        Cycle cycles = 0;
        while (!rig.sm.idle() && cycles < 200000) {
            rig.tick();
            ++cycles;
        }
        return cycles;
    };
    EXPECT_LT(run_conflict(1), run_conflict(8));
}

TEST(SmCore, UtilizationIntegralsAccumulate)
{
    TestRig rig;
    auto k = launch(rig, aluKernel(5));
    rig.run(10);
    const SmStats &s = rig.sm.stats();
    EXPECT_EQ(s.regsAllocatedIntegral, 10u * 16u * 64u);
    EXPECT_EQ(s.threadsAllocatedIntegral, 10u * 64u);
}
