/**
 * @file
 * Snapshot/restore engine tests: bit-identity of restored runs across
 * every engine variant (serial / 4 tick threads, clock skip on/off,
 * fused epochs ride along), the typed rejection of damaged or
 * mismatched snapshot files, warm-start co-run fan-out equivalence
 * (including decision-log replay), and checkpoint/resume through the
 * harness.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/sim_error.hh"
#include "core/policies.hh"
#include "core/warped_slicer.hh"
#include "expect_throw.hh"
#include "gpu/gpu.hh"
#include "harness/runner.hh"
#include "harness/snapshot_cache.hh"
#include "obs/decision_log.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/telemetry.hh"
#include "workloads/benchmarks.hh"

using namespace wsl;

namespace {

constexpr Cycle kWindow = 40000;
constexpr Cycle kSplit = 17000;  //!< snapshot point mid-run

/** An engine variant (bit-identical to every other by construction). */
struct Variant
{
    bool clockSkip;
    unsigned tickThreads;
};

const Variant kVariants[] = {
    {true, 1}, {false, 1}, {true, 4}, {false, 4}};

GpuConfig
variantConfig(const Variant &v)
{
    GpuConfig cfg;
    cfg.clockSkip = v.clockSkip;
    cfg.tickThreads = v.tickThreads;
    return cfg;
}

/** A two-kernel machine with the Dynamic policy mid-lifecycle: the
 *  snapshot must carry profiling state, quotas, and (with targets)
 *  kernel halts across the boundary. */
std::unique_ptr<Gpu>
makeMachine(const GpuConfig &cfg)
{
    auto gpu = std::make_unique<Gpu>(
        cfg, std::make_unique<WarpedSlicerPolicy>(
                 scaledSlicerOptions(kWindow)));
    gpu->launchKernel(benchmark("MM"), 50'000'000);
    gpu->launchKernel(benchmark("LBM"), 50'000'000);
    return gpu;
}

/** Everything the identity checks compare. */
struct MachineDigest
{
    Cycle cycle = 0;
    GpuStats stats;
    std::vector<std::uint64_t> kernelFields;
    std::vector<int> chosenCtas;
    std::size_t decisions = 0;
};

MachineDigest
digest(Gpu &gpu)
{
    MachineDigest d;
    d.cycle = gpu.cycle();
    d.stats = gpu.collectStats();
    for (std::size_t k = 0; k < gpu.numKernels(); ++k) {
        const KernelInstance &ki = gpu.kernel(static_cast<KernelId>(k));
        d.kernelFields.push_back(ki.nextCta);
        d.kernelFields.push_back(ki.ctasCompleted);
        d.kernelFields.push_back(ki.halted ? 1 : 0);
        d.kernelFields.push_back(ki.done ? 1 : 0);
        d.kernelFields.push_back(ki.finishCycle);
    }
    const auto &dyn =
        dynamic_cast<const WarpedSlicerPolicy &>(gpu.slicingPolicy());
    d.chosenCtas = dyn.lastDecision().ctas;
    d.decisions = dyn.decisionHistory().size();
    return d;
}

void
expectDigestsEqual(const MachineDigest &a, const MachineDigest &b)
{
    EXPECT_EQ(a.cycle, b.cycle);
    EXPECT_EQ(a.kernelFields, b.kernelFields);
    EXPECT_EQ(a.chosenCtas, b.chosenCtas);
    EXPECT_EQ(a.decisions, b.decisions);
    SmStats::forEachField([&](const char *name, auto member) {
        EXPECT_EQ(a.stats.*member, b.stats.*member)
            << "SmStats field " << name;
    });
    PartitionStats::forEachField([&](const char *name, auto member) {
        EXPECT_EQ(a.stats.*member, b.stats.*member)
            << "PartitionStats field " << name;
    });
}

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

} // namespace

// ---- Round-trip bit-identity ----

TEST(Snapshot, RoundTripMatchesUninterruptedRun)
{
    for (const Variant &v : kVariants) {
        const GpuConfig cfg = variantConfig(v);

        auto cold = makeMachine(cfg);
        cold->run(kWindow);
        const MachineDigest want = digest(*cold);

        auto first = makeMachine(cfg);
        first->run(kSplit);
        const std::vector<std::uint8_t> snap = saveSnapshot(*first);

        auto resumed = std::make_unique<Gpu>(
            cfg, std::make_unique<WarpedSlicerPolicy>(
                     scaledSlicerOptions(kWindow)));
        restoreSnapshot(*resumed, snap);
        EXPECT_EQ(resumed->cycle(), kSplit);
        resumed->run(kWindow - kSplit);

        expectDigestsEqual(digest(*resumed), want);

        // The interrupted donor, continued in place, must also match:
        // saving is read-only.
        first->run(kWindow - kSplit);
        expectDigestsEqual(digest(*first), want);
    }
}

TEST(Snapshot, PreemptAndResumeMatchesUninterrupted)
{
    // The serving layer's preemption path: checkpoint the machine,
    // evict one mid-flight kernel (haltKernel), keep serving the
    // survivor, and later re-admit the preempted kernel by restoring
    // the checkpoint. The re-admitted run must land on final stats
    // byte-identical to a run that was never preempted.
    const GpuConfig cfg = variantConfig({true, 1});
    auto makeTargeted = [&] {
        auto gpu = std::make_unique<Gpu>(
            cfg, std::make_unique<WarpedSlicerPolicy>(
                     scaledSlicerOptions(kWindow)));
        gpu->launchKernel(benchmark("MM"), 5'000'000);
        gpu->launchKernel(benchmark("LBM"), 3'000'000);
        return gpu;
    };

    auto cold = makeTargeted();
    cold->run(50'000'000);
    ASSERT_TRUE(cold->allKernelsDone());
    const MachineDigest want = digest(*cold);

    // Checkpoint mid-flight, then preempt kernel 1 on the donor.
    auto donor = makeTargeted();
    donor->run(kSplit);
    const std::vector<std::uint8_t> snap = saveSnapshot(*donor);
    ASSERT_FALSE(donor->kernel(1).done);
    const std::uint64_t preempted_insts = donor->kernelThreadInsts(1);
    EXPECT_GT(preempted_insts, 0u);
    donor->haltKernel(1);
    EXPECT_TRUE(donor->kernel(1).done);
    EXPECT_TRUE(donor->kernel(1).halted);
    EXPECT_EQ(donor->kernel(1).finishCycle, kSplit);
    // Executed-work accounting survives the eviction: the preempted
    // job's instruction-level checkpoint is readable post-halt.
    EXPECT_EQ(donor->kernelThreadInsts(1), preempted_insts);

    // The degraded machine keeps serving the survivor to completion
    // (it halts organically at its instruction target).
    donor->run(50'000'000);
    ASSERT_TRUE(donor->allKernelsDone());
    EXPECT_GE(donor->kernelThreadInsts(0), 5'000'000u);

    // Re-admit: the checkpoint carries the evicted kernel's mid-flight
    // state, so resuming finishes both kernels bit-identically.
    auto resumed = std::make_unique<Gpu>(
        cfg, std::make_unique<WarpedSlicerPolicy>(
                 scaledSlicerOptions(kWindow)));
    restoreSnapshot(*resumed, snap);
    EXPECT_EQ(resumed->cycle(), kSplit);
    resumed->run(50'000'000);
    ASSERT_TRUE(resumed->allKernelsDone());
    expectDigestsEqual(digest(*resumed), want);
}

TEST(Snapshot, RestoreCrossesEngineVariants)
{
    // Capture under the serial skipping engine, restore under every
    // other variant: tick boundaries are variant-independent machine
    // states, and the fingerprint canonicalizes the engine knobs.
    auto donor = makeMachine(variantConfig({true, 1}));
    donor->run(kSplit);
    const std::vector<std::uint8_t> snap = saveSnapshot(*donor);

    for (const Variant &v : kVariants) {
        const GpuConfig cfg = variantConfig(v);
        auto cold = makeMachine(cfg);
        cold->run(kWindow);
        const MachineDigest want = digest(*cold);

        auto resumed = std::make_unique<Gpu>(
            cfg, std::make_unique<WarpedSlicerPolicy>(
                     scaledSlicerOptions(kWindow)));
        restoreSnapshot(*resumed, snap);
        resumed->run(kWindow - kSplit);
        expectDigestsEqual(digest(*resumed), want);
    }
}

TEST(Snapshot, SegmentedRunsAndAuditedReplayMatch)
{
    // run(a); save; restore; run(b) chains compose arbitrarily, and a
    // bisection-style replay under --audit=1 reproduces the same
    // machine (audits are read-only).
    const GpuConfig cfg = variantConfig({true, 1});
    auto cold = makeMachine(cfg);
    cold->run(kWindow);
    const MachineDigest want = digest(*cold);

    auto stepped = makeMachine(cfg);
    std::vector<std::uint8_t> snap;
    for (Cycle at = 8000; at < kWindow; at += 8000) {
        stepped->run(at - stepped->cycle());
        snap = saveSnapshot(*stepped);
    }
    stepped->run(kWindow - stepped->cycle());
    expectDigestsEqual(digest(*stepped), want);

    GpuConfig audited = cfg;
    audited.auditCadence = 1;
    audited.watchdogCycles = 5000;
    auto replay = std::make_unique<Gpu>(
        audited, std::make_unique<WarpedSlicerPolicy>(
                     scaledSlicerOptions(kWindow)));
    restoreSnapshot(*replay, snap);
    replay->run(kWindow - replay->cycle());
    expectDigestsEqual(digest(*replay), want);
    ASSERT_NE(replay->integrityAuditor(), nullptr);
    EXPECT_GT(replay->integrityAuditor()->auditsRun(), 0u);
}

// ---- Rejection of damaged / mismatched snapshots ----

TEST(Snapshot, RejectsDamagedFiles)
{
    auto gpu = makeMachine(variantConfig({true, 1}));
    gpu->run(5000);
    const std::vector<std::uint8_t> good = saveSnapshot(*gpu);

    auto fresh = [] {
        return std::make_unique<Gpu>(
            variantConfig({true, 1}),
            std::make_unique<WarpedSlicerPolicy>(
                scaledSlicerOptions(kWindow)));
    };

    // Truncated file.
    std::vector<std::uint8_t> truncated(good.begin(),
                                        good.end() - good.size() / 3);
    WSL_EXPECT_THROW_MSG(restoreSnapshot(*fresh(), truncated),
                         SnapshotError, "truncated");

    // Flipped payload byte.
    std::vector<std::uint8_t> corrupt = good;
    corrupt[corrupt.size() / 2] ^= 0x40;
    WSL_EXPECT_THROW_MSG(restoreSnapshot(*fresh(), corrupt),
                         SnapshotError, "checksum");

    // Wrong magic.
    std::vector<std::uint8_t> bad_magic = good;
    bad_magic[0] = 'X';
    WSL_EXPECT_THROW_MSG(restoreSnapshot(*fresh(), bad_magic),
                         SnapshotError, "not a wslicer snapshot");

    // Future format version.
    std::vector<std::uint8_t> bad_version = good;
    bad_version[8] = static_cast<std::uint8_t>(snapshotFormatVersion + 1);
    WSL_EXPECT_THROW_MSG(restoreSnapshot(*fresh(), bad_version),
                         SnapshotError, "format version");
}

TEST(Snapshot, RejectsMachineAndPolicyMismatches)
{
    auto gpu = makeMachine(variantConfig({true, 1}));
    gpu->run(5000);
    const std::vector<std::uint8_t> snap = saveSnapshot(*gpu);

    // A simulated-machine parameter differs: refuse.
    GpuConfig other = variantConfig({true, 1});
    other.l1Size = 32 * 1024;
    Gpu other_gpu(other, std::make_unique<WarpedSlicerPolicy>(
                             scaledSlicerOptions(kWindow)));
    WSL_EXPECT_THROW_MSG(restoreSnapshot(other_gpu, snap),
                         SnapshotError, "different machine");

    // Same machine, different policy: refuse.
    Gpu wrong_policy(variantConfig({true, 1}),
                     std::make_unique<SpatialPolicy>());
    WSL_EXPECT_THROW_MSG(restoreSnapshot(wrong_policy, snap),
                         SnapshotError, "policy");

    // A machine that already ran is not a restore target.
    auto used = makeMachine(variantConfig({true, 1}));
    used->run(100);
    WSL_EXPECT_THROW_MSG(restoreSnapshot(*used, snap), SnapshotError,
                         "freshly constructed");
}

TEST(Snapshot, RefusesToCaptureWithTelemetryAttached)
{
    auto gpu = makeMachine(variantConfig({true, 1}));
    TelemetrySampler sampler(TelemetryConfig{1000, 4096});
    gpu->attachTelemetry(&sampler);
    gpu->run(3000);
    WSL_EXPECT_THROW_MSG(saveSnapshot(*gpu), SnapshotError,
                         "telemetry");
}

// ---- Files and provenance ----

TEST(Snapshot, FileRoundTripAndProbe)
{
    const std::string path = tempPath("wsl_test_snapshot.bin");
    const GpuConfig cfg = variantConfig({true, 1});

    auto gpu = makeMachine(cfg);
    gpu->run(kSplit);
    writeSnapshotFile(*gpu, path);

    const SnapshotInfo info = probeSnapshotFile(path);
    EXPECT_TRUE(info.valid());
    EXPECT_EQ(info.formatVersion, snapshotFormatVersion);
    EXPECT_EQ(info.captureCycle, kSplit);
    EXPECT_EQ(info.machineFingerprint,
              snapshotMachineFingerprint(cfg));

    auto cold = makeMachine(cfg);
    cold->run(kWindow);
    auto resumed = std::make_unique<Gpu>(
        cfg, std::make_unique<WarpedSlicerPolicy>(
                 scaledSlicerOptions(kWindow)));
    restoreSnapshotFile(*resumed, path);
    resumed->run(kWindow - resumed->cycle());
    expectDigestsEqual(digest(*resumed), digest(*cold));

    std::remove(path.c_str());
    WSL_EXPECT_THROW_MSG(probeSnapshotFile(path), SnapshotError,
                         "cannot open snapshot");
}

TEST(Snapshot, EngineKnobsShareAFingerprint)
{
    const GpuConfig base = variantConfig({true, 1});
    for (const Variant &v : kVariants) {
        EXPECT_EQ(snapshotMachineFingerprint(variantConfig(v)),
                  snapshotMachineFingerprint(base));
    }
    GpuConfig audited = base;
    audited.auditCadence = 100;
    audited.watchdogCycles = 10000;
    EXPECT_EQ(snapshotMachineFingerprint(audited),
              snapshotMachineFingerprint(base));

    GpuConfig other = base;
    other.seed = 2;
    EXPECT_NE(snapshotMachineFingerprint(other),
              snapshotMachineFingerprint(base));
}

// ---- Harness integration: warm-start fan-out, checkpoint/resume ----

namespace {

void
expectCoRunsEqual(const CoRunResult &a, const CoRunResult &b)
{
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.sysIpc, b.sysIpc);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.chosenCtas, b.chosenCtas);
    EXPECT_EQ(a.spatialFallback, b.spatialFallback);
    ASSERT_EQ(a.apps.size(), b.apps.size());
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
        EXPECT_EQ(a.apps[i].insts, b.apps[i].insts);
        EXPECT_EQ(a.apps[i].cycles, b.apps[i].cycles);
    }
    SmStats::forEachField([&](const char *name, auto member) {
        EXPECT_EQ(a.stats.*member, b.stats.*member)
            << "SmStats field " << name;
    });
    PartitionStats::forEachField([&](const char *name, auto member) {
        EXPECT_EQ(a.stats.*member, b.stats.*member)
            << "PartitionStats field " << name;
    });
}

std::string
decisionJson(const DecisionLog &log)
{
    std::ostringstream os;
    log.writeJson(os);
    return os.str();
}

} // namespace

TEST(Snapshot, WarmStartCoRunIsByteIdenticalToCold)
{
    const std::vector<KernelParams> apps = {benchmark("MM"),
                                            benchmark("LBM")};
    const std::vector<std::uint64_t> targets = {400000, 300000};
    const GpuConfig cfg = variantConfig({true, 1});

    CoRunOptions cold_opts;
    cold_opts.maxCycles = kWindow;
    cold_opts.slicer = scaledSlicerOptions(kWindow);
    DecisionLog cold_log;
    cold_opts.decisionLog = &cold_log;
    const CoRunResult cold = runCoSchedule(apps, targets,
                                           PolicyKind::Dynamic, cfg,
                                           cold_opts);

    SnapshotCache cache;
    CoRunOptions warm_opts = cold_opts;
    warm_opts.warmStart = &cache;
    warm_opts.warmStartAt = kWindow / 2;

    DecisionLog warm_log;
    warm_opts.decisionLog = &warm_log;
    const CoRunResult warm = runCoSchedule(apps, targets,
                                           PolicyKind::Dynamic, cfg,
                                           warm_opts);
    expectCoRunsEqual(warm, cold);
    EXPECT_EQ(decisionJson(warm_log), decisionJson(cold_log));
    EXPECT_EQ(cache.misses(), 1u);

    // Second identical job: pure cache hit, same bytes, same result.
    DecisionLog warm2_log;
    warm_opts.decisionLog = &warm2_log;
    const CoRunResult warm2 = runCoSchedule(apps, targets,
                                            PolicyKind::Dynamic, cfg,
                                            warm_opts);
    expectCoRunsEqual(warm2, cold);
    EXPECT_EQ(decisionJson(warm2_log), decisionJson(cold_log));
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(Snapshot, CheckpointedRunResumesToIdenticalResult)
{
    const std::string path = tempPath("wsl_test_checkpoint.bin");
    const std::vector<KernelParams> apps = {benchmark("NN"),
                                            benchmark("HOT")};
    const std::vector<std::uint64_t> targets = {250000, 250000};
    const GpuConfig cfg = variantConfig({true, 1});

    CoRunOptions cold_opts;
    cold_opts.maxCycles = kWindow;
    const CoRunResult cold = runCoSchedule(apps, targets,
                                           PolicyKind::LeftOver, cfg,
                                           cold_opts);

    // Interrupted run: checkpoint mid-way, stop there.
    CoRunOptions ckpt_opts = cold_opts;
    ckpt_opts.maxCycles = kWindow / 2;
    ckpt_opts.snapshotAt = kWindow / 2;
    ckpt_opts.snapshotPath = path;
    runCoSchedule(apps, targets, PolicyKind::LeftOver, cfg, ckpt_opts);

    // Resume from the file and finish the original interval.
    CoRunOptions resume_opts = cold_opts;
    resume_opts.restorePath = path;
    const CoRunResult resumed = runCoSchedule(
        apps, targets, PolicyKind::LeftOver, cfg, resume_opts);
    expectCoRunsEqual(resumed, cold);

    // A resume with mismatched targets (stale characterization) is
    // refused with a pointer at the window.
    const std::vector<std::uint64_t> wrong = {111111, 250000};
    WSL_EXPECT_THROW_MSG(
        runCoSchedule(apps, wrong, PolicyKind::LeftOver, cfg,
                      resume_opts),
        SnapshotError, "instruction target");

    std::remove(path.c_str());
}

TEST(Snapshot, PeriodicCheckpointsResumeFromLastEpoch)
{
    const std::string path = tempPath("wsl_test_periodic.bin");
    const std::vector<KernelParams> apps = {benchmark("MM"),
                                            benchmark("BFS")};
    const std::vector<std::uint64_t> targets = {300000, 200000};
    const GpuConfig cfg = variantConfig({true, 1});

    CoRunOptions cold_opts;
    cold_opts.maxCycles = kWindow;
    const CoRunResult cold = runCoSchedule(apps, targets,
                                           PolicyKind::Even, cfg,
                                           cold_opts);

    // Periodic checkpoints all the way to the end; the file is left
    // at the final epoch...
    CoRunOptions ckpt_opts = cold_opts;
    ckpt_opts.checkpointEvery = kWindow / 5;
    ckpt_opts.snapshotPath = path;
    const CoRunResult ckpt = runCoSchedule(
        apps, targets, PolicyKind::Even, cfg, ckpt_opts);
    expectCoRunsEqual(ckpt, cold);  // checkpointing is observation-only

    // ...so resuming is either a no-op continuation or a short tail,
    // and lands on the same result either way.
    CoRunOptions resume_opts = cold_opts;
    resume_opts.restorePath = path;
    const CoRunResult resumed = runCoSchedule(
        apps, targets, PolicyKind::Even, cfg, resume_opts);
    expectCoRunsEqual(resumed, cold);

    std::remove(path.c_str());
}

TEST(Snapshot, CheckpointOptionValidation)
{
    const std::vector<KernelParams> apps = {benchmark("MM")};
    const std::vector<std::uint64_t> targets = {100000};
    const GpuConfig cfg = variantConfig({true, 1});

    CoRunOptions opts;
    opts.maxCycles = 10000;
    opts.snapshotAt = 5000;  // no snapshotPath
    WSL_EXPECT_THROW_MSG(runCoSchedule(apps, targets,
                                       PolicyKind::LeftOver, cfg, opts),
                         ConfigError, "snapshotPath");

    opts.snapshotPath = tempPath("wsl_test_never_written.bin");
    TelemetrySampler sampler(TelemetryConfig{1000, 4096});
    opts.telemetry = &sampler;
    WSL_EXPECT_THROW_MSG(runCoSchedule(apps, targets,
                                       PolicyKind::LeftOver, cfg, opts),
                         ConfigError, "telemetry");
}
