/**
 * @file
 * Tests for the memoized solo-characterization cache: hit/miss
 * accounting, key separation across kernel / config / window / quota,
 * fingerprint sensitivity, and value independence of cached entries.
 */

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/solo_cache.hh"
#include "telemetry/telemetry.hh"
#include "workloads/benchmarks.hh"

using namespace wsl;

namespace {

const GpuConfig cfg = GpuConfig::baseline();
constexpr Cycle kWindow = 10000;

} // namespace

TEST(SoloCache, RepeatLookupsHitTheCache)
{
    SoloCache cache;
    const SoloResult &a = cache.get(benchmark("NN"), cfg, kWindow);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    const SoloResult &b = cache.get(benchmark("NN"), cfg, kWindow);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(&a, &b);  // same entry, not a recomputation
    EXPECT_EQ(cache.size(), 1u);
}

TEST(SoloCache, CachedValueMatchesDirectSimulation)
{
    SoloCache cache;
    const SoloResult &cached =
        cache.get(benchmark("HOT"), cfg, kWindow, 2);
    const SoloResult direct =
        runSoloForCycles(benchmark("HOT"), cfg, kWindow, 2);
    EXPECT_EQ(cached.cycles, direct.cycles);
    EXPECT_EQ(cached.threadInsts, direct.threadInsts);
    EXPECT_EQ(cached.warpInsts, direct.warpInsts);
    EXPECT_EQ(cached.stats.l1Misses, direct.stats.l1Misses);
    EXPECT_EQ(cached.stats.warpInstsIssued,
              direct.stats.warpInstsIssued);
}

TEST(SoloCache, DistinctKeysNeverCollide)
{
    SoloCache cache;
    cache.get(benchmark("NN"), cfg, kWindow);

    // Different kernel.
    cache.get(benchmark("HOT"), cfg, kWindow);
    EXPECT_EQ(cache.misses(), 2u);

    // Different window.
    cache.get(benchmark("NN"), cfg, kWindow * 2);
    EXPECT_EQ(cache.misses(), 3u);

    // Different CTA quota.
    cache.get(benchmark("NN"), cfg, kWindow, 1);
    EXPECT_EQ(cache.misses(), 4u);

    // Different config (any field participates in the fingerprint).
    GpuConfig other = cfg;
    other.seed += 1;
    cache.get(benchmark("NN"), other, kWindow);
    EXPECT_EQ(cache.misses(), 5u);

    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 5u);
}

TEST(SoloCache, FingerprintsCoverKernelPerturbations)
{
    // A sensitivity sweep that tweaks one kernel field must not reuse
    // the canonical benchmark's entry, even under the same name.
    SoloCache cache;
    KernelParams base = benchmark("NN");
    cache.get(base, cfg, kWindow);

    KernelParams perturbed = base;
    perturbed.mix.depDist += 1;
    cache.get(perturbed, cfg, kWindow);
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_NE(kernelFingerprint(base), kernelFingerprint(perturbed));

    GpuConfig a = cfg, b = cfg;
    b.scheduler = SchedulerKind::Lrr;
    EXPECT_NE(configFingerprint(a), configFingerprint(b));
    EXPECT_EQ(configFingerprint(a), configFingerprint(cfg));
}

TEST(SoloCache, ClearResetsEverything)
{
    SoloCache cache;
    cache.get(benchmark("NN"), cfg, kWindow);
    cache.get(benchmark("NN"), cfg, kWindow);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    cache.get(benchmark("NN"), cfg, kWindow);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SoloCache, CharacterizationSharesTheGlobalCache)
{
    SoloCache::global().clear();
    Characterization chars(cfg, kWindow);
    chars.target("NN");
    const std::uint64_t misses = SoloCache::global().misses();
    EXPECT_GE(misses, 1u);

    // A second Characterization with identical parameters re-uses the
    // memoized solo runs instead of re-simulating.
    Characterization again(cfg, kWindow);
    again.target("NN");
    again.solo("NN");
    again.aloneCycles("NN");
    EXPECT_EQ(SoloCache::global().misses(), misses);
    EXPECT_GE(SoloCache::global().hits(), 3u);
}

TEST(SoloCache, CachedResultsCarryNoLiveRecordingState)
{
    // Cached entries are plain counter snapshots: a run that attaches
    // telemetry to a co-run must not mutate the cached solo stats.
    SoloCache::global().clear();
    Characterization chars(cfg, kWindow);
    const SoloResult &before = chars.solo("NN");
    const std::uint64_t insts = before.threadInsts;
    const std::uint64_t l1 = before.stats.l1Misses;

    const std::vector<KernelParams> apps = {benchmark("NN"),
                                            benchmark("HOT")};
    const std::vector<std::uint64_t> targets = {chars.target("NN"),
                                                chars.target("HOT")};
    TelemetrySampler sampler(TelemetryConfig{1000, 4096});
    CoRunOptions opts;
    opts.telemetry = &sampler;
    runCoSchedule(apps, targets, PolicyKind::Even, cfg, opts);

    const SoloResult &after = chars.solo("NN");
    EXPECT_EQ(&before, &after);
    EXPECT_EQ(after.threadInsts, insts);
    EXPECT_EQ(after.stats.l1Misses, l1);
}
