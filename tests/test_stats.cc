/**
 * @file
 * Unit tests for the statistics structures and derived metrics.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/stats.hh"

using namespace wsl;

TEST(Stats, StallKindNamesAreDistinct)
{
    std::set<std::string> names;
    for (unsigned i = 0; i < numStallKinds; ++i) {
        const char *name = stallKindName(static_cast<StallKind>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::strlen(name), 0u);
        EXPECT_TRUE(names.insert(name).second) << name;
    }
    EXPECT_STREQ(stallKindName(StallKind::MemLatency),
                 "LongMemoryLatency");
    EXPECT_STREQ(stallKindName(StallKind::IBufferEmpty),
                 "IBufferEmpty");
}

TEST(Stats, SmStallTotalSums)
{
    SmStats s;
    s.stalls[0] = 5;
    s.stalls[2] = 7;
    s.stalls[numStallKinds - 1] = 1;
    EXPECT_EQ(s.stallTotal(), 13u);
}

TEST(Stats, GpuIpc)
{
    GpuStats g;
    g.cycles = 1000;
    g.warpInstsIssued = 4500;
    EXPECT_DOUBLE_EQ(g.ipc(), 4.5);
    g.cycles = 0;
    EXPECT_DOUBLE_EQ(g.ipc(), 0.0);
}

TEST(Stats, L2Mpki)
{
    GpuStats g;
    g.warpInstsIssued = 10000;
    g.l2Misses = 450;
    EXPECT_DOUBLE_EQ(g.l2Mpki(), 45.0);
    g.warpInstsIssued = 0;
    EXPECT_DOUBLE_EQ(g.l2Mpki(), 0.0);
}

TEST(Stats, MissRates)
{
    GpuStats g;
    g.l1Accesses = 200;
    g.l1Misses = 50;
    g.l2Accesses = 50;
    g.l2Misses = 10;
    EXPECT_DOUBLE_EQ(g.l1MissRate(), 0.25);
    EXPECT_DOUBLE_EQ(g.l2MissRate(), 0.2);
    GpuStats empty;
    EXPECT_DOUBLE_EQ(empty.l1MissRate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.l2MissRate(), 0.0);
}

TEST(Stats, CountersStartAtZero)
{
    const SmStats s;
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.warpInstsIssued, 0u);
    EXPECT_EQ(s.stallTotal(), 0u);
    for (auto v : s.kernelWarpInsts)
        EXPECT_EQ(v, 0u);
    const GpuStats g;
    EXPECT_EQ(g.dramBusyCycles, 0u);
    EXPECT_EQ(g.ldstIssues, 0u);
}

TEST(Stats, FieldVisitorNamesAreUniqueAndNonEmpty)
{
    std::set<std::string> names;
    auto check = [&](const char *name, auto) {
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::strlen(name), 0u);
        EXPECT_TRUE(names.insert(name).second) << name;
    };
    SmStats::forEachField(check);
    PartitionStats::forEachField(check);
    // The two field sets must stay disjoint: GpuStats inherits both.
    EXPECT_GE(names.size(), 25u);
}

TEST(Stats, AccumulateSumsEveryPublishedField)
{
    SmStats a, b;
    // Touch scalar, per-kernel array, and nested array fields.
    a.cycles = 10;
    b.cycles = 32;
    a.l1Misses = 3;
    b.l1Misses = 4;
    a.kernelWarpInsts[1] = 100;
    b.kernelWarpInsts[1] = 11;
    a.kernelStalls[0][2] = 5;
    b.kernelStalls[0][2] = 6;
    b.kernelStalls[3][1] = 9;
    accumulateStats<SmStats>(a, b);
    EXPECT_EQ(a.cycles, 42u);
    EXPECT_EQ(a.l1Misses, 7u);
    EXPECT_EQ(a.kernelWarpInsts[1], 111u);
    EXPECT_EQ(a.kernelStalls[0][2], 11u);
    EXPECT_EQ(a.kernelStalls[3][1], 9u);
}

TEST(Stats, SubtractInvertsAccumulate)
{
    SmStats base;
    base.warpInstsIssued = 500;
    base.stalls[1] = 20;
    base.unattributedStalls[1] = 8;
    SmStats later = base;
    later.warpInstsIssued = 720;
    later.stalls[1] = 31;
    later.unattributedStalls[1] = 10;

    SmStats delta = later;
    subtractStats<SmStats>(delta, base);
    EXPECT_EQ(delta.warpInstsIssued, 220u);
    EXPECT_EQ(delta.stalls[1], 11u);
    EXPECT_EQ(delta.unattributedStalls[1], 2u);

    // delta + base == later again, field by field.
    accumulateStats<SmStats>(delta, base);
    EXPECT_EQ(delta.warpInstsIssued, later.warpInstsIssued);
    EXPECT_EQ(delta.stalls[1], later.stalls[1]);
}

TEST(Stats, VisitorAppliesToDerivedGpuStats)
{
    // Base-class member pointers must work on the derived aggregate —
    // this is what Gpu::collectStats relies on.
    GpuStats g;
    SmStats sm;
    sm.warpInstsIssued = 7;
    sm.kernelLdstBusyCycles[2] = 3;
    PartitionStats part;
    part.dramRowHits = 13;
    accumulateStats<SmStats>(g, sm);
    accumulateStats<PartitionStats>(g, part);
    EXPECT_EQ(g.warpInstsIssued, 7u);
    EXPECT_EQ(g.kernelLdstBusyCycles[2], 3u);
    EXPECT_EQ(g.dramRowHits, 13u);
}
