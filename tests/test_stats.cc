/**
 * @file
 * Unit tests for the statistics structures and derived metrics.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/stats.hh"

using namespace wsl;

TEST(Stats, StallKindNamesAreDistinct)
{
    std::set<std::string> names;
    for (unsigned i = 0; i < numStallKinds; ++i) {
        const char *name = stallKindName(static_cast<StallKind>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::strlen(name), 0u);
        EXPECT_TRUE(names.insert(name).second) << name;
    }
    EXPECT_STREQ(stallKindName(StallKind::MemLatency),
                 "LongMemoryLatency");
    EXPECT_STREQ(stallKindName(StallKind::IBufferEmpty),
                 "IBufferEmpty");
}

TEST(Stats, SmStallTotalSums)
{
    SmStats s;
    s.stalls[0] = 5;
    s.stalls[2] = 7;
    s.stalls[numStallKinds - 1] = 1;
    EXPECT_EQ(s.stallTotal(), 13u);
}

TEST(Stats, GpuIpc)
{
    GpuStats g;
    g.cycles = 1000;
    g.warpInstsIssued = 4500;
    EXPECT_DOUBLE_EQ(g.ipc(), 4.5);
    g.cycles = 0;
    EXPECT_DOUBLE_EQ(g.ipc(), 0.0);
}

TEST(Stats, L2Mpki)
{
    GpuStats g;
    g.warpInstsIssued = 10000;
    g.l2Misses = 450;
    EXPECT_DOUBLE_EQ(g.l2Mpki(), 45.0);
    g.warpInstsIssued = 0;
    EXPECT_DOUBLE_EQ(g.l2Mpki(), 0.0);
}

TEST(Stats, MissRates)
{
    GpuStats g;
    g.l1Accesses = 200;
    g.l1Misses = 50;
    g.l2Accesses = 50;
    g.l2Misses = 10;
    EXPECT_DOUBLE_EQ(g.l1MissRate(), 0.25);
    EXPECT_DOUBLE_EQ(g.l2MissRate(), 0.2);
    GpuStats empty;
    EXPECT_DOUBLE_EQ(empty.l1MissRate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.l2MissRate(), 0.0);
}

TEST(Stats, CountersStartAtZero)
{
    const SmStats s;
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.warpInstsIssued, 0u);
    EXPECT_EQ(s.stallTotal(), 0u);
    for (auto v : s.kernelWarpInsts)
        EXPECT_EQ(v, 0u);
    const GpuStats g;
    EXPECT_EQ(g.dramBusyCycles, 0u);
    EXPECT_EQ(g.ldstIssues, 0u);
}
