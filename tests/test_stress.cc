/**
 * @file
 * Randomized stress / property tests: long co-runs with random kernel
 * mixes, mid-flight evictions, and quota churn, checking that resource
 * accounting and scoreboard state stay consistent throughout.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/policies.hh"
#include "harness/runner.hh"

using namespace wsl;

namespace {

const GpuConfig cfg = GpuConfig::baseline();

} // namespace

class RandomCoRun : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomCoRun, QuotaChurnKeepsAccountingConsistent)
{
    Rng rng(GetParam());
    const auto &all = allBenchmarks();
    Gpu gpu(cfg, std::make_unique<LeftOverPolicy>());
    const KernelId k0 = gpu.launchKernel(
        all[rng.range(all.size())], 50'000'000);
    const KernelId k1 = gpu.launchKernel(
        all[rng.range(all.size())], 50'000'000);

    for (int step = 0; step < 40; ++step) {
        // Random quota churn, as an adversarial version of what the
        // dynamic policy does.
        for (unsigned s = 0; s < gpu.numSms(); ++s) {
            if (rng.chance(0.3))
                gpu.sm(s).setQuota(k0, static_cast<int>(rng.range(9)));
            if (rng.chance(0.3))
                gpu.sm(s).setQuota(k1, static_cast<int>(rng.range(9)));
        }
        if (rng.chance(0.1))
            for (unsigned s = 0; s < gpu.numSms(); ++s)
                gpu.sm(s).clearQuotas();
        gpu.run(1000);

        for (unsigned s = 0; s < gpu.numSms(); ++s) {
            const SmCore &core = gpu.sm(s);
            // Residency never exceeds CTA slots; pool usage is within
            // capacity in every dimension.
            EXPECT_LE(core.totalResidentCtas(), cfg.maxCtasPerSm);
            EXPECT_TRUE(core.pool().usedVec().fitsIn(
                ResourceVec::capacity(cfg)));
            const int q0 = core.quota(k0);
            if (q0 >= 0) {
                // Residency may exceed a lowered quota only while
                // draining, never grow beyond it... we can at least
                // assert it never exceeds the max possible.
                EXPECT_LE(core.residentCtas(k0), cfg.maxCtasPerSm);
            }
        }
    }
    // Progress was made by both kernels.
    EXPECT_GT(gpu.kernelWarpInsts(k0), 0u);
    EXPECT_GT(gpu.kernelWarpInsts(k1), 0u);
}

TEST_P(RandomCoRun, RepeatedEvictionLeavesCleanState)
{
    Rng rng(GetParam() + 1000);
    const auto &all = allBenchmarks();
    Gpu gpu(cfg, std::make_unique<LeftOverPolicy>());
    const KernelId victim = gpu.launchKernel(
        all[rng.range(all.size())], 1'000'000'000);
    const KernelId survivor = gpu.launchKernel(
        all[rng.range(all.size())], 1'000'000'000);
    // Keep room for the survivor (worst case both kernels are BFS
    // with 512-thread CTAs: two each still leave a free slot).
    for (unsigned s = 0; s < gpu.numSms(); ++s) {
        gpu.sm(s).setQuota(victim, 2);
        gpu.sm(s).setQuota(survivor, 2);
    }

    for (int round = 0; round < 10; ++round) {
        gpu.run(300 + rng.range(700));
        for (unsigned s = 0; s < gpu.numSms(); ++s)
            gpu.sm(s).evictKernel(victim);
        for (unsigned s = 0; s < gpu.numSms(); ++s)
            EXPECT_EQ(gpu.sm(s).residentCtas(victim), 0u);
        // The dispatcher will relaunch victim CTAs next tick; run on.
    }
    gpu.run(2000);
    EXPECT_GT(gpu.kernelWarpInsts(survivor), 0u);
    for (unsigned s = 0; s < gpu.numSms(); ++s) {
        EXPECT_TRUE(gpu.sm(s).pool().usedVec().fitsIn(
            ResourceVec::capacity(cfg)));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCoRun, ::testing::Range(1, 9));

TEST(Stress, AllBenchmarkPairsSurviveShortDynamicRuns)
{
    // Every (compute x other) pairing at least starts, profiles, and
    // decides without tripping an assertion.
    WarpedSlicerOptions opts;
    opts.warmup = 500;
    opts.profileLength = 800;
    for (const WorkloadPair &pair : evaluationPairs()) {
        Gpu gpu(cfg, std::make_unique<WarpedSlicerPolicy>(opts));
        gpu.launchKernel(benchmark(pair.first), 1'000'000'000);
        gpu.launchKernel(benchmark(pair.second), 1'000'000'000);
        gpu.run(4000);
        EXPECT_GT(gpu.collectStats().warpInstsIssued, 0u)
            << pair.first << "_" << pair.second;
    }
}
