/**
 * @file
 * Tests for the telemetry subsystem: interval sampling deltas,
 * bounded-series compaction, per-kernel stall/LDST attribution, and
 * the latency-histogram recording gate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "core/policies.hh"
#include "gpu/gpu.hh"
#include "report/table.hh"
#include "telemetry/telemetry.hh"
#include "workloads/benchmarks.hh"

using namespace wsl;

namespace {

/** Two-kernel GPU used by most tests (MM is compute-ish, BFS memory-
 *  bound, so both latency and stall paths get exercised). */
std::unique_ptr<Gpu>
makeCoRunGpu()
{
    auto gpu = std::make_unique<Gpu>(GpuConfig::baseline(),
                                     std::make_unique<LeftOverPolicy>());
    gpu->launchKernel(benchmark("MM"));
    gpu->launchKernel(benchmark("BFS"));
    return gpu;
}

} // namespace

TEST(Telemetry, DisabledSamplerNeverAttaches)
{
    auto gpu = makeCoRunGpu();
    TelemetrySampler off(TelemetryConfig{0, 16});
    EXPECT_FALSE(off.enabled());
    gpu->attachTelemetry(&off);
    EXPECT_EQ(gpu->telemetry(), nullptr);
    gpu->run(2000);
    EXPECT_TRUE(off.intervals().empty());
}

TEST(Telemetry, IntervalDeltasSumToFinalStats)
{
    auto gpu = makeCoRunGpu();
    TelemetrySampler sampler(TelemetryConfig{2000, 4096});
    gpu->attachTelemetry(&sampler);
    gpu->run(25000);
    sampler.finish(*gpu);

    const GpuStats final_stats = gpu->collectStats();
    std::uint64_t warp = 0, cycles = 0, l2 = 0, stalls = 0;
    for (const TelemetryInterval &iv : sampler.intervals()) {
        warp += iv.gpu.warpInstsIssued;
        cycles += iv.gpu.cycles;
        l2 += iv.gpu.l2Accesses;
        stalls += iv.gpu.stallTotal();
    }
    EXPECT_EQ(warp, final_stats.warpInstsIssued);
    EXPECT_EQ(cycles, final_stats.cycles);
    EXPECT_EQ(l2, final_stats.l2Accesses);
    EXPECT_EQ(stalls, final_stats.stallTotal());

    // Intervals tile the run: contiguous, and the last one ends at the
    // current cycle thanks to finish().
    ASSERT_FALSE(sampler.intervals().empty());
    Cycle prev_end = 0;
    for (const TelemetryInterval &iv : sampler.intervals()) {
        EXPECT_EQ(iv.start, prev_end);
        EXPECT_GT(iv.end, iv.start);
        prev_end = iv.end;
    }
    EXPECT_EQ(prev_end, gpu->cycle());
}

TEST(Telemetry, PerSmDeltasSumToSmTotals)
{
    auto gpu = makeCoRunGpu();
    TelemetrySampler sampler(TelemetryConfig{3000, 4096});
    gpu->attachTelemetry(&sampler);
    gpu->run(20000);
    sampler.finish(*gpu);

    for (unsigned s = 0; s < gpu->numSms(); ++s) {
        std::uint64_t warp = 0;
        for (const TelemetryInterval &iv : sampler.intervals())
            warp += iv.sms[s].warpInstsIssued;
        EXPECT_EQ(warp, gpu->sm(s).stats().warpInstsIssued) << "sm" << s;
    }
}

TEST(Telemetry, CompactionBoundsSeriesAndPreservesSums)
{
    auto gpu = makeCoRunGpu();
    // Tiny interval and tiny bound force several compactions.
    TelemetrySampler sampler(TelemetryConfig{100, 8});
    gpu->attachTelemetry(&sampler);
    gpu->run(20000);
    sampler.finish(*gpu);

    EXPECT_LE(sampler.intervals().size(), 8u);
    EXPECT_GT(sampler.compactions(), 0u);
    // Each compaction merges interval pairs and doubles the stride.
    EXPECT_EQ(sampler.stride(),
              Cycle{100} << sampler.compactions());

    const GpuStats final_stats = gpu->collectStats();
    std::uint64_t warp = 0, cycles = 0;
    Cycle prev_end = 0;
    for (const TelemetryInterval &iv : sampler.intervals()) {
        warp += iv.gpu.warpInstsIssued;
        cycles += iv.gpu.cycles;
        EXPECT_EQ(iv.start, prev_end);  // still contiguous
        prev_end = iv.end;
    }
    EXPECT_EQ(warp, final_stats.warpInstsIssued);
    EXPECT_EQ(cycles, final_stats.cycles);
    EXPECT_EQ(prev_end, gpu->cycle());
}

TEST(Telemetry, StallAttributionSumsToTotals)
{
    auto gpu = makeCoRunGpu();
    // LeftOver residency starves kernel 1; split the SMs so both
    // kernels have resident warps to be charged for.
    for (unsigned s = 0; s < gpu->numSms(); ++s) {
        gpu->sm(s).setQuota(0, 2);
        gpu->sm(s).setQuota(1, 2);
    }
    TelemetrySampler sampler(TelemetryConfig{5000, 4096});
    gpu->attachTelemetry(&sampler);
    gpu->run(30000);

    for (unsigned s = 0; s < gpu->numSms(); ++s) {
        const SmStats &st = gpu->sm(s).stats();
        for (unsigned kind = 0; kind < numStallKinds; ++kind) {
            std::uint64_t attributed = 0;
            for (unsigned k = 0; k < maxConcurrentKernels; ++k)
                attributed += st.kernelStalls[k][kind];
            EXPECT_EQ(attributed + st.unattributedStalls[kind],
                      st.stalls[kind])
                << "sm" << s << " kind" << kind;
        }
        // Idle has no resident warps, so no kernel can be charged.
        const unsigned idle = static_cast<unsigned>(StallKind::Idle);
        for (unsigned k = 0; k < maxConcurrentKernels; ++k)
            EXPECT_EQ(st.kernelStalls[k][idle], 0u);
        // LDST attribution never exceeds the unit's busy time.
        std::uint64_t ldst = 0;
        for (unsigned k = 0; k < maxConcurrentKernels; ++k)
            ldst += st.kernelLdstBusyCycles[k];
        EXPECT_LE(ldst, st.ldstBusyCycles);
    }
    // Both kernels actually got charged somewhere on the GPU.
    const GpuStats g = gpu->collectStats();
    std::uint64_t k0 = 0, k1 = 0;
    for (unsigned kind = 0; kind < numStallKinds; ++kind) {
        k0 += g.kernelStalls[0][kind];
        k1 += g.kernelStalls[1][kind];
    }
    EXPECT_GT(k0, 0u);
    EXPECT_GT(k1, 0u);
}

TEST(Telemetry, LatencyHistogramsOnlyRecordWhenAttached)
{
    // Without telemetry the histogram paths must stay cold.
    auto plain = makeCoRunGpu();
    plain->run(15000);
    for (unsigned s = 0; s < plain->numSms(); ++s)
        for (unsigned k = 0; k < maxConcurrentKernels; ++k)
            EXPECT_TRUE(plain->sm(s)
                            .memLatencyHistogram(static_cast<KernelId>(k))
                            .empty());

    auto gpu = makeCoRunGpu();
    TelemetrySampler sampler(TelemetryConfig{5000, 4096});
    gpu->attachTelemetry(&sampler);
    gpu->run(15000);
    Histogram merged;
    for (unsigned s = 0; s < gpu->numSms(); ++s)
        for (unsigned k = 0; k < maxConcurrentKernels; ++k)
            merged.merge(gpu->sm(s).memLatencyHistogram(
                static_cast<KernelId>(k)));
    EXPECT_FALSE(merged.empty());
    // Global-load round trips are at least the L1 hit latency.
    EXPECT_GE(merged.min(), GpuConfig::baseline().l1HitLatency);
    // Queue-depth histograms in the partitions follow the same gate.
    Histogram depth;
    for (unsigned p = 0; p < gpu->numPartitions(); ++p)
        depth.merge(gpu->partition(p).mshrOccupancyHistogram());
    EXPECT_FALSE(depth.empty());
    for (unsigned p = 0; p < plain->numPartitions(); ++p)
        EXPECT_TRUE(plain->partition(p).mshrOccupancyHistogram().empty());
}

TEST(Telemetry, QuotaSnapshotTracksSetQuotas)
{
    auto gpu = makeCoRunGpu();
    for (unsigned s = 0; s < gpu->numSms(); ++s) {
        gpu->sm(s).setQuota(0, 3);
        gpu->sm(s).setQuota(1, 2);
    }
    TelemetrySampler sampler(TelemetryConfig{2000, 4096});
    gpu->attachTelemetry(&sampler);
    gpu->run(8000);
    sampler.finish(*gpu);

    ASSERT_FALSE(sampler.intervals().empty());
    const TelemetryInterval &iv = sampler.intervals().back();
    EXPECT_EQ(iv.quotas[0], 3);
    EXPECT_EQ(iv.quotas[1], 2);
    // With quotas 3+2 per SM, total resident CTAs respect the caps.
    EXPECT_LE(iv.residentCtas[0], 3u * gpu->numSms());
    EXPECT_LE(iv.residentCtas[1], 2u * gpu->numSms());
    EXPECT_GT(iv.residentCtas[0] + iv.residentCtas[1], 0u);
}

TEST(Telemetry, TableHasOneRowPerScopePerInterval)
{
    auto gpu = makeCoRunGpu();
    TelemetrySampler sampler(TelemetryConfig{4000, 4096});
    gpu->attachTelemetry(&sampler);
    gpu->run(12000);
    sampler.finish(*gpu);

    const Table t = sampler.toTable();
    const std::size_t scopes = 1 + gpu->numSms() + gpu->numPartitions();
    EXPECT_EQ(t.numRows(), sampler.intervals().size() * scopes);

    std::ostringstream csv;
    sampler.writeCsv(csv);
    const std::string text = csv.str();
    // Header + one line per row.
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(text.begin(), text.end(), '\n')),
              t.numRows() + 1);
    std::ostringstream json;
    sampler.writeJson(json);
    EXPECT_EQ(json.str().front(), '[');
}

TEST(Telemetry, SamplingDoesNotPerturbTheSimulation)
{
    // Telemetry is observational: the simulated execution must be
    // cycle-for-cycle identical with and without a sampler attached.
    auto a = makeCoRunGpu();
    a->run(20000);
    auto b = makeCoRunGpu();
    TelemetrySampler sampler(TelemetryConfig{1000, 16});
    b->attachTelemetry(&sampler);
    b->run(20000);

    const GpuStats sa = a->collectStats();
    const GpuStats sb = b->collectStats();
    EXPECT_EQ(sa.warpInstsIssued, sb.warpInstsIssued);
    EXPECT_EQ(sa.l1Misses, sb.l1Misses);
    EXPECT_EQ(sa.dramReads, sb.dramReads);
    EXPECT_EQ(sa.stallTotal(), sb.stallTotal());
}
