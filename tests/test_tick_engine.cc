/**
 * @file
 * Tests for the deterministic intra-run parallel tick engine: TickPool
 * mechanics (sharding, dispatch, exception propagation), the ordered
 * interconnect merge, composition of tick threads with batch jobs, and
 * the headline determinism property — a micro-window co-run must be
 * bit-identical to the serial reference engine even when the pool's
 * test hook forces workers to finish out of order. Also covers the
 * addressing edge cases the merge relies on (lineAddr / partitionOf at
 * the top of the address space, non-power-of-two partition counts).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "check/access.hh"
#include "common/config.hh"
#include "core/policies.hh"
#include "expect_throw.hh"
#include "gpu/gpu.hh"
#include "gpu/staging.hh"
#include "harness/parallel.hh"
#include "harness/tick_pool.hh"
#include "mem/partition.hh"
#include "mem/request.hh"
#include "sm/sm_core.hh"
#include "workloads/benchmarks.hh"

using namespace wsl;

namespace {

/** Exact counter-level equality via the canonical field lists. */
void
expectStatsEqual(const GpuStats &a, const GpuStats &b)
{
    SmStats::forEachField([&](const char *name, auto member) {
        EXPECT_EQ(a.*member, b.*member) << "SmStats field " << name;
    });
    PartitionStats::forEachField([&](const char *name, auto member) {
        EXPECT_EQ(a.*member, b.*member)
            << "PartitionStats field " << name;
    });
}

} // namespace

// ---------------------------------------------------------------------
// shardRange
// ---------------------------------------------------------------------

TEST(ShardRange, PartitionsIndexSpaceInOrder)
{
    for (std::size_t n : {0u, 1u, 5u, 16u, 17u, 1000u}) {
        for (unsigned threads : {1u, 2u, 3u, 4u, 7u, 16u}) {
            std::size_t expect_begin = 0;
            for (unsigned t = 0; t < threads; ++t) {
                auto [begin, end] = shardRange(n, t, threads);
                EXPECT_EQ(begin, expect_begin)
                    << "gap/overlap at n=" << n << " t=" << t;
                EXPECT_LE(begin, end);
                expect_begin = end;
            }
            EXPECT_EQ(expect_begin, n)
                << "shards must cover all of [0, n)";
        }
    }
}

TEST(ShardRange, BalancedWithinOne)
{
    const std::size_t n = 16;
    const unsigned threads = 5;
    for (unsigned t = 0; t < threads; ++t) {
        auto [begin, end] = shardRange(n, t, threads);
        const std::size_t len = end - begin;
        EXPECT_GE(len, n / threads);
        EXPECT_LE(len, n / threads + 1);
    }
}

// ---------------------------------------------------------------------
// TickPool
// ---------------------------------------------------------------------

TEST(TickPool, RunsEveryWorkerExactlyOncePerDispatch)
{
    TickPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::vector<std::atomic<int>> hits(4);
    const std::function<void(unsigned)> fn = [&](unsigned t) {
        hits[t].fetch_add(1, std::memory_order_relaxed);
    };
    constexpr int rounds = 200;
    for (int i = 0; i < rounds; ++i)
        pool.run(fn);
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(hits[t].load(), rounds) << "worker " << t;
}

TEST(TickPool, SingleThreadDegeneratesToPlainCall)
{
    TickPool pool(1);
    unsigned calls = 0;
    pool.run([&](unsigned t) {
        EXPECT_EQ(t, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1u);
}

TEST(TickPool, LowestWorkerIndexExceptionWins)
{
    TickPool pool(4);
    // Workers 1 and 3 both throw; the serial loop would have hit
    // worker 1's shard first, so that is the error run() must rethrow.
    WSL_EXPECT_THROW_MSG(
        pool.run([](unsigned t) {
            if (t == 1)
                throw std::runtime_error("boom from worker 1");
            if (t == 3)
                throw std::runtime_error("boom from worker 3");
        }),
        std::runtime_error, "worker 1");
    // The pool stays usable after an exceptional round.
    std::atomic<unsigned> ok{0};
    pool.run([&](unsigned) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 4u);
}

// ---------------------------------------------------------------------
// composeTickThreads
// ---------------------------------------------------------------------

TEST(ComposeTickThreads, SerialTickEngineIsUntouched)
{
    EXPECT_EQ(composeTickThreads(1, 1), 1u);
    EXPECT_EQ(composeTickThreads(8, 1), 1u);
    EXPECT_EQ(composeTickThreads(0, 0), 1u);
}

TEST(ComposeTickThreads, SingleJobKeepsFullTickCount)
{
    // jobs <= 1 means no outer parallelism: the run gets its tick
    // threads un-clamped regardless of the host's core count.
    EXPECT_EQ(composeTickThreads(1, 4), 4u);
    EXPECT_EQ(composeTickThreads(0, 8), 8u);
}

TEST(ComposeTickThreads, ComposedCountNeverOversubscribes)
{
    const unsigned hw = std::thread::hardware_concurrency();
    for (unsigned jobs : {2u, 4u, 8u, 64u}) {
        for (unsigned tick : {2u, 4u, 8u}) {
            const unsigned got = composeTickThreads(jobs, tick);
            EXPECT_GE(got, 1u);
            EXPECT_LE(got, tick);
            if (hw > 0) {
                // jobs x tickThreads stays within the machine (each
                // factor alone may already saturate it).
                EXPECT_LE(static_cast<std::uint64_t>(got) * jobs,
                          static_cast<std::uint64_t>(
                              std::max(hw, jobs)));
                if (jobs >= hw) {
                    EXPECT_EQ(got, 1u);
                }
            } else {
                EXPECT_EQ(got, 1u);
            }
        }
    }
}

TEST(ComposeTickThreads, ClampNeverLeavesStarvedPool)
{
    // A clamp that would hand a run a starved pool (fewer than 3
    // threads, where dispatch + barrier cost beats the sharding win)
    // must degrade the whole way to the serial engine instead. The
    // composition may return the full request (it fit), the serial
    // engine, or a pool of at least 3 threads — never a clamped 2.
    for (unsigned jobs : {2u, 3u, 4u, 8u, 64u}) {
        for (unsigned tick : {2u, 4u, 8u}) {
            const unsigned got = composeTickThreads(jobs, tick);
            EXPECT_TRUE(got == tick || got == 1u || got >= 3u)
                << "starved pool: jobs=" << jobs << " tick=" << tick
                << " -> " << got;
        }
    }
}

TEST(ComposeTickThreads, DegradationsAreCounted)
{
    // jobs=4096 saturates any real machine, so the request must
    // degrade to serial and the degradation counter (exported through
    // the registry as wsl_tick_threads_degraded) must tick up.
    const std::uint64_t before = tickThreadDegradations();
    EXPECT_EQ(composeTickThreads(4096, 8), 1u);
    EXPECT_GT(tickThreadDegradations(), before);
    // Untouched requests do not count as degradations.
    const std::uint64_t mid = tickThreadDegradations();
    EXPECT_EQ(composeTickThreads(1, 4), 4u);
    EXPECT_EQ(tickThreadDegradations(), mid);
}

// ---------------------------------------------------------------------
// Adaptive engine selection (tickThreads = auto) and the dc preset
// ---------------------------------------------------------------------

TEST(AutoTickThreads, ScalesWithWorkAndHardware)
{
    // One pool thread per ~16 SMs, capped by the hardware, and never a
    // 1-thread pool (that is just the serial engine with overhead).
    EXPECT_EQ(GpuConfig::autoTickThreads(128, 8), 8u);
    EXPECT_EQ(GpuConfig::autoTickThreads(128, 16), 8u);
    EXPECT_EQ(GpuConfig::autoTickThreads(64, 8), 4u);
    EXPECT_EQ(GpuConfig::autoTickThreads(64, 2), 2u);
    // Too little work or too little hardware: serial engine.
    EXPECT_EQ(GpuConfig::autoTickThreads(16, 8), 1u);
    EXPECT_EQ(GpuConfig::autoTickThreads(128, 1), 1u);
    EXPECT_EQ(GpuConfig::autoTickThreads(128, 0), 1u);
}

TEST(AutoTickThreads, GpuResolvesSentinelBeforeRunning)
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.tickThreads = GpuConfig::tickThreadsAuto;
    Gpu gpu(cfg, std::make_unique<LeftOverPolicy>());
    // The sentinel never survives construction: the resolved config is
    // a concrete thread count consistent with this host.
    const unsigned resolved = gpu.config().tickThreads;
    EXPECT_NE(resolved, GpuConfig::tickThreadsAuto);
    EXPECT_EQ(resolved,
              GpuConfig::autoTickThreads(
                  cfg.numSms, std::thread::hardware_concurrency()));
    gpu.launchKernel(benchmark("MM"));
    EXPECT_NO_THROW(gpu.run(500));
}

TEST(DcPreset, ValidatesAndRunsAWindow)
{
    GpuConfig cfg = GpuConfig::datacenter();
    EXPECT_EQ(cfg.numSms, 128u);
    EXPECT_EQ(cfg.numMemPartitions, 32u);
    EXPECT_NO_THROW(cfg.validate());
    Gpu gpu(cfg, std::make_unique<LeftOverPolicy>());
    gpu.launchKernel(benchmark("MM"));
    EXPECT_NO_THROW(gpu.run(300));
    EXPECT_LE(gpu.cycle(), 300u);
    EXPECT_GT(gpu.collectStats().warpInstsIssued, 0u);
}

// ---------------------------------------------------------------------
// InterconnectStage ordered merge
// ---------------------------------------------------------------------

namespace {

Addr
lineForPartition(unsigned part, unsigned nparts, unsigned k)
{
    return static_cast<Addr>(part + k * nparts) * lineSize;
}

} // namespace

TEST(InterconnectStage, MergesInSmIndexOrder)
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.numSms = 3;
    cfg.numMemPartitions = 2;
    std::vector<std::unique_ptr<SmCore>> sm_store;
    std::vector<std::unique_ptr<MemPartition>> part_store;
    std::vector<SmCore *> sms;
    std::vector<MemPartition *> parts;
    for (unsigned i = 0; i < cfg.numSms; ++i) {
        sm_store.push_back(std::make_unique<SmCore>(cfg, i));
        sms.push_back(sm_store.back().get());
    }
    for (unsigned i = 0; i < cfg.numMemPartitions; ++i) {
        part_store.push_back(std::make_unique<MemPartition>(cfg, i));
        parts.push_back(part_store.back().get());
    }

    // Every SM stages two requests for partition 0 (staged in
    // arbitrary per-SM order by the compute phase; here by hand).
    for (unsigned i = 0; i < cfg.numSms; ++i) {
        auto &out = sms[i]->outgoingRequests();
        out.push_back({lineForPartition(0, 2, 2 * i),
                       false, static_cast<SmId>(i), 10});
        out.push_back({lineForPartition(0, 2, 2 * i + 1),
                       false, static_cast<SmId>(i), 10});
    }

    InterconnectStage stage;
    stage.mergeRequests(sms, parts);
    EXPECT_EQ(stage.routedRequests(), 6u);
    for (unsigned i = 0; i < cfg.numSms; ++i)
        EXPECT_TRUE(sms[i]->outgoingRequests().empty());

    // Partition 0's input queue must hold SM 0's requests first, then
    // SM 1's, then SM 2's — exactly the serial iteration order.
    std::vector<SmId> got;
    for (const MemRequest &req : AuditAccess::reqQueue(*parts[0]))
        got.push_back(req.sm);
    const std::vector<SmId> want = {0, 0, 1, 1, 2, 2};
    EXPECT_EQ(got, want);
    EXPECT_EQ(AuditAccess::reqQueueDepth(*parts[1]), 0u);
}

TEST(InterconnectStage, BackpressureKeepsRefusedRequestsInOrder)
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.numSms = 2;
    cfg.numMemPartitions = 1;
    SmCore sm0(cfg, 0), sm1(cfg, 1);
    MemPartition part(cfg, 0);
    std::vector<SmCore *> sms = {&sm0, &sm1};
    std::vector<MemPartition *> parts = {&part};

    // Fill the partition queue to one slot short of its 64-entry
    // backpressure limit, then stage 3 more requests: only the first
    // (SM 0's oldest) fits; the refused two must stay staged in order.
    while (AuditAccess::reqQueueDepth(part) < 63)
        part.pushRequest({0, false, 0, 0});
    sm0.outgoingRequests().push_back({1 * lineSize, false, 0, 5});
    sm0.outgoingRequests().push_back({2 * lineSize, false, 0, 5});
    sm1.outgoingRequests().push_back({3 * lineSize, false, 1, 5});

    InterconnectStage stage;
    stage.mergeRequests(sms, parts);
    EXPECT_EQ(AuditAccess::reqQueueDepth(part), 64u);
    ASSERT_EQ(sm0.outgoingRequests().size(), 1u);
    EXPECT_EQ(sm0.outgoingRequests()[0].line, 2 * lineSize);
    ASSERT_EQ(sm1.outgoingRequests().size(), 1u);
    EXPECT_EQ(sm1.outgoingRequests()[0].line, 3 * lineSize);
    EXPECT_EQ(stage.routedRequests(), 1u);

    // Draining the partition lets the retry succeed, oldest first.
    part.reset();
    stage.mergeRequests(sms, parts);
    EXPECT_EQ(stage.routedRequests(), 3u);
    EXPECT_TRUE(sm0.outgoingRequests().empty());
    EXPECT_TRUE(sm1.outgoingRequests().empty());
}

// ---------------------------------------------------------------------
// Bit-identity under forced out-of-order worker completion
// ---------------------------------------------------------------------

namespace {

struct MicroRun
{
    Cycle cycles = 0;
    std::uint64_t insts = 0;
    GpuStats stats;
    std::uint64_t routed = 0;
    std::uint64_t delivered = 0;
};

/** Run `bench` alone for `window` cycles at `tick_threads`, optionally
 *  installing a worker delay inverse to the worker index so higher
 *  workers finish first (the worst case for a naive merge). */
MicroRun
microWindow(const char *bench, Cycle window, unsigned tick_threads,
            bool scramble)
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.tickThreads = tick_threads;
    Gpu gpu(cfg, std::make_unique<LeftOverPolicy>());
    if (scramble) {
        TickPool *pool = gpu.tickPool();
        if (pool) {
            const unsigned threads = pool->threads();
            pool->setWorkerDelayForTest([threads](unsigned t) {
                // Worker 0 (the caller, lowest shard) sleeps longest:
                // completions arrive in reverse index order.
                std::this_thread::sleep_for(std::chrono::microseconds(
                    (threads - 1 - t) * 50));
            });
        }
    }
    const KernelId kid = gpu.launchKernel(benchmark(bench));
    gpu.run(window);
    MicroRun out;
    out.cycles = gpu.cycle();
    out.insts = gpu.kernelThreadInsts(kid);
    out.stats = gpu.collectStats();
    out.routed = gpu.interconnect().routedRequests();
    out.delivered = gpu.interconnect().deliveredResponses();
    return out;
}

void
expectMicroRunsEqual(const MicroRun &serial, const MicroRun &parallel)
{
    EXPECT_EQ(serial.cycles, parallel.cycles);
    EXPECT_EQ(serial.insts, parallel.insts);
    expectStatsEqual(serial.stats, parallel.stats);
}

} // namespace

TEST(TickEngineDeterminism, MmMicroWindowMatchesSerialReference)
{
    const Cycle window = 3000;
    const MicroRun serial = microWindow("MM", window, 1, false);
    const MicroRun parallel = microWindow("MM", window, 4, true);
    expectMicroRunsEqual(serial, parallel);
    // A scrambled parallel run routes the same traffic through the
    // ordered stage that the serial engine pushed directly.
    EXPECT_GT(parallel.routed, 0u);
    EXPECT_EQ(parallel.routed, serial.routed);
    EXPECT_EQ(parallel.delivered, serial.delivered);
}

TEST(TickEngineDeterminism, LbmMicroWindowMatchesSerialReference)
{
    const Cycle window = 3000;
    const MicroRun serial = microWindow("LBM", window, 1, false);
    const MicroRun parallel = microWindow("LBM", window, 4, true);
    expectMicroRunsEqual(serial, parallel);
    EXPECT_GT(parallel.routed, 0u);
    EXPECT_EQ(parallel.routed, serial.routed);
    EXPECT_EQ(parallel.delivered, serial.delivered);
}

TEST(TickEngineDeterminism, StagingConservationHoldsAfterRun)
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.tickThreads = 3;  // deliberately not a divisor of 16 SMs
    cfg.auditCadence = 1; // audit (incl. staging check) every cycle
    Gpu gpu(cfg, std::make_unique<LeftOverPolicy>());
    gpu.launchKernel(benchmark("LBM"));
    gpu.run(4000);
    ASSERT_NE(gpu.integrityAuditor(), nullptr);
    std::uint64_t accepted = 0, pushed = 0, staged = 0;
    for (unsigned i = 0; i < gpu.numPartitions(); ++i) {
        accepted += AuditAccess::accepted(gpu.partition(i));
        pushed += AuditAccess::pushedResponses(gpu.partition(i));
        staged += AuditAccess::responseCount(gpu.partition(i));
    }
    EXPECT_EQ(gpu.interconnect().routedRequests(), accepted);
    EXPECT_EQ(pushed, gpu.interconnect().deliveredResponses() + staged);
}

// ---------------------------------------------------------------------
// Addressing edge cases the merge depends on
// ---------------------------------------------------------------------

TEST(Addressing, LineAddrAtTopOfAddressSpace)
{
    constexpr Addr max = std::numeric_limits<Addr>::max();
    const Addr top_line = lineAddr(max);
    EXPECT_EQ(top_line, max - (lineSize - 1));
    EXPECT_EQ(top_line % lineSize, 0u);
    EXPECT_EQ(lineAddr(top_line), top_line);
    // Every byte of the top line maps to the same line address — no
    // wraparound past the end of the address space.
    EXPECT_EQ(lineAddr(max - 1), top_line);
    EXPECT_EQ(lineAddr(top_line + lineSize / 2), top_line);
}

TEST(Addressing, PartitionOfAtTopOfAddressSpace)
{
    constexpr Addr max = std::numeric_limits<Addr>::max();
    const Addr top_line = lineAddr(max);
    for (unsigned nparts : {1u, 2u, 5u, 6u, 7u, 1024u}) {
        const unsigned home = partitionOf(top_line, nparts);
        EXPECT_LT(home, nparts);
        // The modulo interleave must agree with its definition even
        // where line/lineSize is near 2^57.
        EXPECT_EQ(home, static_cast<unsigned>(
                            (top_line / lineSize) % nparts));
        // Bytes within one line share a home partition.
        EXPECT_EQ(partitionOf(lineAddr(max - 1), nparts), home);
    }
}

TEST(Addressing, ConsecutiveLinesInterleaveForNonPow2Counts)
{
    // 6 partitions (the paper's baseline) is not a power of two; the
    // interleave must still cycle through every partition.
    const unsigned nparts = 6;
    for (unsigned k = 0; k < 2 * nparts; ++k) {
        EXPECT_EQ(partitionOf(static_cast<Addr>(k) * lineSize, nparts),
                  k % nparts);
    }
}

TEST(ConfigValidate, NonPow2ComponentCountsAreValid)
{
    GpuConfig cfg = GpuConfig::baseline();
    EXPECT_EQ(cfg.numMemPartitions, 6u);  // paper baseline, non-pow2
    EXPECT_NO_THROW(cfg.validate());
    cfg.numMemPartitions = 7;
    cfg.numSms = 13;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(ConfigValidate, RejectsOutOfRangeComponentCounts)
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.numMemPartitions = 1025;
    WSL_EXPECT_THROW_MSG(cfg.validate(), ConfigError,
                         "numMemPartitions");
    cfg = GpuConfig::baseline();
    cfg.numSms = 1025;
    WSL_EXPECT_THROW_MSG(cfg.validate(), ConfigError, "numSms");
}

TEST(ConfigValidate, RejectsZeroTickThreads)
{
    GpuConfig cfg = GpuConfig::baseline();
    cfg.tickThreads = 0;
    WSL_EXPECT_THROW_MSG(cfg.validate(), ConfigError, "tickThreads");
}
