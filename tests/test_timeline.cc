/**
 * @file
 * Tests for the Chrome trace-event JSON exporter: the document must be
 * well-formed JSON and carry the per-kernel, per-SM, and per-partition
 * tracks the viewer renders.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <sstream>
#include <string>

#include "core/policies.hh"
#include "core/warped_slicer.hh"
#include "gpu/gpu.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeline.hh"
#include "trace/tracer.hh"
#include "workloads/benchmarks.hh"

using namespace wsl;

namespace {

/**
 * Minimal recursive-descent JSON well-formedness checker. Accepts the
 * value grammar of RFC 8259 (objects, arrays, strings with escapes,
 * numbers, true/false/null); rejects trailing garbage.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool eat(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    value()
    {
        skipWs();
        if (pos >= s.size())
            return false;
        switch (s[pos]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        if (!eat('{'))
            return false;
        skipWs();
        if (eat('}'))
            return true;
        do {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            if (!value())
                return false;
            skipWs();
        } while (eat(','));
        return eat('}');
    }

    bool
    array()
    {
        if (!eat('['))
            return false;
        skipWs();
        if (eat(']'))
            return true;
        do {
            if (!value())
                return false;
            skipWs();
        } while (eat(','));
        return eat(']');
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
            }
            ++pos;
        }
        return eat('"');
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        return pos > start;
    }

    bool
    literal(const char *word)
    {
        const std::string w(word);
        if (s.compare(pos, w.size(), w) != 0)
            return false;
        pos += w.size();
        return true;
    }

    const std::string &s;
    std::size_t pos = 0;
};

/** RAII guard: enables the global tracer for one test. */
struct TraceGuard
{
    explicit TraceGuard(std::size_t capacity = 1 << 20)
    {
        Tracer::global().enable(capacity);
    }
    ~TraceGuard() { Tracer::global().disable(); }
};

unsigned
countOccurrences(const std::string &text, const std::string &needle)
{
    unsigned n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1))
        ++n;
    return n;
}

} // namespace

TEST(Timeline, EmptyTraceStillWellFormed)
{
    TraceGuard guard;
    std::ostringstream os;
    writeChromeTrace(os, Tracer::global(), nullptr, 1000);
    EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
    EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);
}

TEST(Timeline, CoRunProducesAllTrackKinds)
{
    TraceGuard guard;
    Gpu gpu(GpuConfig::baseline(), std::make_unique<LeftOverPolicy>());
    gpu.launchKernel(benchmark("MM"));
    gpu.launchKernel(benchmark("BFS"));
    TelemetrySampler sampler(TelemetryConfig{5000, 4096});
    gpu.attachTelemetry(&sampler);
    gpu.run(20000);
    sampler.finish(gpu);

    std::ostringstream os;
    writeChromeTrace(os, Tracer::global(), &sampler, gpu.cycle());
    const std::string out = os.str();

    ASSERT_TRUE(JsonChecker(out).valid());
    // Process groups.
    EXPECT_NE(out.find("\"Kernels\""), std::string::npos);
    EXPECT_NE(out.find("\"SMs\""), std::string::npos);
    EXPECT_NE(out.find("\"Memory Partitions\""), std::string::npos);
    // Per-kernel slice tracks named after the benchmarks.
    EXPECT_NE(out.find("\"MM\""), std::string::npos);
    EXPECT_NE(out.find("\"BFS\""), std::string::npos);
    EXPECT_GE(countOccurrences(out, "\"ph\":\"X\""), 2u);
    // One named thread per SM.
    for (unsigned s = 0; s < gpu.numSms(); ++s) {
        EXPECT_NE(out.find("\"SM " + std::to_string(s) + "\""),
                  std::string::npos)
            << s;
    }
    // CTA lifecycle instants and sampler counter events.
    EXPECT_GE(countOccurrences(out, "cta_launch"), 1u);
    EXPECT_GE(countOccurrences(out, "\"ph\":\"C\""), 1u);
    EXPECT_NE(out.find("sm0_ipc"), std::string::npos);
    EXPECT_NE(out.find("gpu_ipc"), std::string::npos);
}

TEST(Timeline, DecisionInstantDecodesQuotas)
{
    TraceGuard guard;
    WarpedSlicerOptions opts;
    opts.warmup = 1000;
    opts.profileLength = 1500;
    Gpu gpu(GpuConfig::baseline(),
            std::make_unique<WarpedSlicerPolicy>(opts));
    gpu.launchKernel(benchmark("IMG"), 1'000'000'000);
    gpu.launchKernel(benchmark("NN"), 1'000'000'000);
    gpu.run(60000);

    std::ostringstream os;
    writeChromeTrace(os, Tracer::global(), nullptr, gpu.cycle());
    const std::string out = os.str();
    ASSERT_TRUE(JsonChecker(out).valid());
    EXPECT_NE(out.find("\"decision\""), std::string::npos);
    EXPECT_NE(out.find("\"k0\":"), std::string::npos);
    EXPECT_NE(out.find("\"spatial\":"), std::string::npos);
    EXPECT_NE(out.find("profile_start"), std::string::npos);
}

TEST(Timeline, OpenSlicesCloseAtEndCycle)
{
    TraceGuard guard;
    Tracer::global().setKernelName(0, "RUNNER");
    Tracer::global().record(100, TraceEvent::KernelLaunch, 0, 64);
    // No KernelFinish: the slice must still close at end_cycle.
    std::ostringstream os;
    writeChromeTrace(os, Tracer::global(), nullptr, 5000);
    const std::string out = os.str();
    ASSERT_TRUE(JsonChecker(out).valid());
    EXPECT_NE(out.find("\"RUNNER\""), std::string::npos);
    EXPECT_NE(out.find("\"dur\":4900"), std::string::npos);
    EXPECT_NE(out.find("\"end\":\"running\""), std::string::npos);
}
