/**
 * @file
 * Tests for the event tracer: recording semantics, ring-buffer
 * eviction, and the event streams emitted by real simulations.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/policies.hh"
#include "core/warped_slicer.hh"
#include "harness/runner.hh"
#include "trace/tracer.hh"

using namespace wsl;

namespace {

/** RAII guard: enables the global tracer for one test. */
struct TraceGuard
{
    explicit TraceGuard(std::size_t capacity = 65536)
    {
        Tracer::global().enable(capacity);
    }
    ~TraceGuard() { Tracer::global().disable(); }
};

} // namespace

TEST(Tracer, DisabledByDefaultAndRecordsNothing)
{
    Tracer &t = Tracer::global();
    ASSERT_FALSE(t.enabled());
    t.record(1, TraceEvent::CtaLaunch, 0);
    EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, RecordsInOrder)
{
    TraceGuard guard;
    Tracer &t = Tracer::global();
    t.record(10, TraceEvent::KernelLaunch, 0, 100);
    t.record(20, TraceEvent::CtaLaunch, 0, 0, 3);
    ASSERT_EQ(t.records().size(), 2u);
    EXPECT_EQ(t.records()[0].cycle, 10u);
    EXPECT_EQ(t.records()[1].b, 3u);
    EXPECT_EQ(t.totalRecorded(), 2u);
}

TEST(Tracer, RingEvictsOldest)
{
    TraceGuard guard(3);
    Tracer &t = Tracer::global();
    for (unsigned i = 0; i < 5; ++i)
        t.record(i, TraceEvent::CtaLaunch, 0, i);
    ASSERT_EQ(t.records().size(), 3u);
    EXPECT_EQ(t.records().front().a, 2u);  // 0 and 1 evicted
    EXPECT_EQ(t.totalRecorded(), 5u);
}

TEST(Tracer, EventNamesDistinct)
{
    EXPECT_STREQ(traceEventName(TraceEvent::Decision), "decision");
    EXPECT_STREQ(traceEventName(TraceEvent::CtaComplete),
                 "cta_complete");
}

TEST(Tracer, PackQuotas)
{
    EXPECT_EQ(packQuotas({3, 5}), 3u | (5u << 8));
    EXPECT_EQ(packQuotas({1, 2, 3, 4}),
              1u | (2u << 8) | (3u << 16) | (4u << 24));
    EXPECT_EQ(packQuotas({}), 0u);
}

TEST(Tracer, DumpIsOneLinePerEvent)
{
    TraceGuard guard;
    Tracer::global().record(5, TraceEvent::KernelFinish, 1, 1);
    std::ostringstream os;
    Tracer::global().dump(os);
    EXPECT_EQ(os.str(), "5 kernel_finish kernel=1 a=1 b=0\n");
}

TEST(Tracer, DumpPrintsRegisteredKernelNames)
{
    TraceGuard guard;
    Tracer &t = Tracer::global();
    t.setKernelName(2, "MM");
    t.record(7, TraceEvent::KernelLaunch, 2, 64);
    std::ostringstream os;
    t.dump(os);
    EXPECT_EQ(os.str(), "7 kernel_launch kernel=MM a=64 b=0\n");
    // Unknown ids keep printing numerically.
    EXPECT_EQ(t.kernelName(99), "");
    EXPECT_EQ(t.kernelName(invalidKernel), "");
}

TEST(Tracer, DumpDecodesDecisionQuotas)
{
    TraceGuard guard;
    Tracer &t = Tracer::global();
    t.record(42, TraceEvent::Decision, invalidKernel,
             packQuotas({4, 2}), 0);
    t.record(50, TraceEvent::Decision, invalidKernel,
             packQuotas({1, 2, 3}), 1);
    std::ostringstream os;
    t.dump(os);
    EXPECT_EQ(os.str(),
              "42 decision k0=4 k1=2 spatial=0\n"
              "50 decision k0=1 k1=2 k2=3 spatial=1\n");
}

TEST(Tracer, KernelNamesSurviveDisable)
{
    // Names are launch metadata, not events: registering while the
    // tracer is off must still work so a later dump can use them.
    Tracer &t = Tracer::global();
    ASSERT_FALSE(t.enabled());
    t.setKernelName(3, "BFS");
    EXPECT_EQ(t.kernelName(3), "BFS");
}

TEST(Tracer, SimulationEmitsConsistentCtaLifecycle)
{
    TraceGuard guard(1 << 20);
    KernelParams k = benchmark("IMG");
    Gpu gpu(GpuConfig::baseline(), std::make_unique<LeftOverPolicy>());
    k.gridDim = 150;
    gpu.launchKernel(k);
    gpu.run(2'000'000);
    ASSERT_TRUE(gpu.allKernelsDone());

    Tracer &t = Tracer::global();
    const auto launches = t.ofKind(TraceEvent::CtaLaunch);
    const auto completes = t.ofKind(TraceEvent::CtaComplete);
    EXPECT_EQ(launches.size(), 150u);
    EXPECT_EQ(completes.size(), 150u);
    EXPECT_EQ(t.ofKind(TraceEvent::KernelLaunch).size(), 1u);
    const auto finishes = t.ofKind(TraceEvent::KernelFinish);
    ASSERT_EQ(finishes.size(), 1u);
    EXPECT_EQ(finishes[0].a, 0u);  // grid completed, not halted
    // Every completion follows its launch in time.
    EXPECT_LE(launches.front().cycle, completes.front().cycle);
}

TEST(Tracer, DynamicPolicyEmitsProfileAndDecision)
{
    TraceGuard guard(1 << 20);
    WarpedSlicerOptions opts;
    opts.warmup = 1000;
    opts.profileLength = 1500;
    Gpu gpu(GpuConfig::baseline(),
            std::make_unique<WarpedSlicerPolicy>(opts));
    gpu.launchKernel(benchmark("IMG"), 1'000'000'000);
    gpu.launchKernel(benchmark("NN"), 1'000'000'000);
    gpu.run(6000);
    Tracer &t = Tracer::global();
    EXPECT_EQ(t.ofKind(TraceEvent::ProfileStart).size(), 1u);
    const auto decisions = t.ofKind(TraceEvent::Decision);
    ASSERT_GE(decisions.size(), 1u);
    // Unpack the quotas: both kernels got at least one CTA.
    const std::uint32_t packed = decisions[0].a;
    if (decisions[0].b == 0) {  // intra-SM decision
        EXPECT_GE(packed & 0xff, 1u);
        EXPECT_GE((packed >> 8) & 0xff, 1u);
    }
}
