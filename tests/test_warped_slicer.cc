/**
 * @file
 * Integration tests for the Warped-Slicer dynamic policy: profiling
 * layout, decision timing, quota enforcement, spatial fallback, >2
 * kernel support, late-arrival repartitioning, and the phase monitor.
 */

#include <gtest/gtest.h>

#include "core/warped_slicer.hh"
#include "harness/runner.hh"
#include "workloads/benchmarks.hh"

using namespace wsl;

namespace {

const GpuConfig cfg = GpuConfig::baseline();

WarpedSlicerOptions
fastOpts()
{
    WarpedSlicerOptions o;
    o.warmup = 2000;
    o.profileLength = 2000;
    o.monitorWindow = 2000;
    o.reprofileCooldown = 50000;
    return o;
}

struct Rig
{
    explicit Rig(WarpedSlicerOptions opts = fastOpts())
    {
        auto policy = std::make_unique<WarpedSlicerPolicy>(opts);
        dyn = policy.get();
        gpu = std::make_unique<Gpu>(cfg, std::move(policy));
    }

    std::unique_ptr<Gpu> gpu;
    WarpedSlicerPolicy *dyn;
};

} // namespace

TEST(WarpedSlicer, SingleKernelStaysIdle)
{
    Rig rig;
    rig.gpu->launchKernel(benchmark("IMG"), 100000);
    rig.gpu->run(5000);
    EXPECT_EQ(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Idle);
    EXPECT_EQ(rig.gpu->sm(0).quota(0), -1);
}

TEST(WarpedSlicer, ProfileLayoutFollowsFigure4)
{
    Rig rig;
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("NN"), 10'000'000);
    EXPECT_EQ(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Profiling);
    rig.gpu->run(1000);
    // First half of the SMs sample kernel 0 with quotas 1..8, second
    // half kernel 1 — check the quota staircase and exclusivity.
    for (unsigned s = 0; s < 8; ++s) {
        EXPECT_EQ(rig.gpu->sm(s).quota(0), static_cast<int>(s + 1));
        EXPECT_EQ(rig.gpu->sm(s).quota(1), 0);
        EXPECT_EQ(rig.gpu->sm(s + 8).quota(0), 0);
        EXPECT_EQ(rig.gpu->sm(s + 8).quota(1), static_cast<int>(s + 1));
    }
}

TEST(WarpedSlicer, DecisionHappensAfterWarmupPlusProfile)
{
    Rig rig;
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("NN"), 10'000'000);
    rig.gpu->run(3999);
    EXPECT_EQ(rig.dyn->profileRounds(), 0u);
    rig.gpu->run(200);
    EXPECT_EQ(rig.dyn->profileRounds(), 1u);
    EXPECT_TRUE(rig.dyn->phase() ==
                    WarpedSlicerPolicy::Phase::Enforced ||
                rig.dyn->phase() == WarpedSlicerPolicy::Phase::Spatial);
}

TEST(WarpedSlicer, EnforcedQuotasMatchDecision)
{
    Rig rig;
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("NN"), 10'000'000);
    rig.gpu->run(5000);
    ASSERT_EQ(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Enforced);
    const WaterFillResult &d = rig.dyn->lastDecision();
    ASSERT_TRUE(d.feasible);
    ASSERT_EQ(d.ctas.size(), 2u);
    for (unsigned s = 0; s < rig.gpu->numSms(); ++s) {
        EXPECT_EQ(rig.gpu->sm(s).quota(0), d.ctas[0]);
        EXPECT_EQ(rig.gpu->sm(s).quota(1), d.ctas[1]);
    }
    // The assignment respects the SM's resources.
    EXPECT_TRUE(d.used.fitsIn(ResourceVec::capacity(cfg)));
}

TEST(WarpedSlicer, PerfVectorsAreReasonable)
{
    Rig rig;
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("NN"), 10'000'000);
    rig.gpu->run(5000);
    const auto &vectors = rig.dyn->lastPerfVectors();
    ASSERT_EQ(vectors.size(), 2u);
    // IMG is compute-scaling: its profiled curve must rise markedly.
    const auto &img = vectors[0];
    ASSERT_EQ(img.size(), 8u);
    EXPECT_GT(img.back(), img.front() * 2.0);
    // All entries positive.
    for (const auto &vec : vectors)
        for (double p : vec)
            EXPECT_GT(p, 0.0);
}

TEST(WarpedSlicer, AlgorithmDelayDefersEnforcement)
{
    WarpedSlicerOptions o = fastOpts();
    o.algorithmDelay = 3000;
    Rig rig(o);
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("NN"), 10'000'000);
    rig.gpu->run(5000);
    EXPECT_EQ(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Delay);
    rig.gpu->run(3000);
    EXPECT_NE(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Delay);
}

TEST(WarpedSlicer, TightThresholdForcesSpatialFallback)
{
    // With an unachievable retained-performance requirement, any
    // co-location falls back to spatial multitasking.
    WarpedSlicerOptions o = fastOpts();
    o.lossThresholdScale = 1e9;
    Rig rig(o);
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("BLK"), 10'000'000);
    rig.gpu->run(6000);
    EXPECT_EQ(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Spatial);
    EXPECT_TRUE(rig.dyn->usedSpatialFallback());
    // Masks keep the kernels on disjoint SMs.
    unsigned overlap = 0;
    for (unsigned s = 0; s < rig.gpu->numSms(); ++s) {
        overlap += rig.dyn->mayDispatch(*rig.gpu, s, 0) &&
                   rig.dyn->mayDispatch(*rig.gpu, s, 1);
    }
    EXPECT_EQ(overlap, 0u);
}

TEST(WarpedSlicer, ThreeKernelsPartitionTogether)
{
    Rig rig;
    rig.gpu->launchKernel(benchmark("MM"), 10'000'000);
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("NN"), 10'000'000);
    // Three kernels profile in two time-shared sub-windows.
    rig.gpu->run(2000 + 2 * 2000 + 500);
    if (rig.dyn->phase() == WarpedSlicerPolicy::Phase::Enforced) {
        const auto &d = rig.dyn->lastDecision();
        ASSERT_EQ(d.ctas.size(), 3u);
        for (int t : d.ctas)
            EXPECT_GE(t, 1);
        EXPECT_TRUE(d.used.fitsIn(ResourceVec::capacity(cfg)));
    } else {
        EXPECT_EQ(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Spatial);
    }
}

TEST(WarpedSlicer, LateArrivalTriggersRepartitioning)
{
    Rig rig;
    rig.gpu->launchKernel(benchmark("MM"), 10'000'000);
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->run(6000);
    const unsigned rounds_before = rig.dyn->profileRounds();
    ASSERT_GE(rounds_before, 1u);
    // Third kernel arrives mid-run: re-profiling starts immediately
    // (no warm-up for later arrivals).
    rig.gpu->launchKernel(benchmark("NN"), 10'000'000);
    EXPECT_EQ(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Profiling);
    rig.gpu->run(2 * 2000 + 500);
    EXPECT_EQ(rig.dyn->profileRounds(), rounds_before + 1);
    if (!rig.dyn->usedSpatialFallback()) {
        EXPECT_EQ(rig.dyn->lastDecision().ctas.size(), 3u);
    }
}

TEST(WarpedSlicer, KernelCompletionLiftsRestrictions)
{
    Characterization chars(cfg, 20000);
    Rig rig;
    rig.gpu->launchKernel(benchmark("IMG"), chars.target("IMG") / 4);
    rig.gpu->launchKernel(benchmark("NN"),
                          chars.target("NN") * 4);
    rig.gpu->run(4'000'000);
    ASSERT_TRUE(rig.gpu->kernel(0).done);
    EXPECT_EQ(rig.dyn->phase(), WarpedSlicerPolicy::Phase::Idle);
    EXPECT_EQ(rig.gpu->sm(0).quota(1), -1);
}

TEST(WarpedSlicer, MonitorStaysQuietOnStationaryWorkload)
{
    WarpedSlicerOptions o = fastOpts();
    o.reprofileCooldown = 0;  // any sustained deviation would fire
    Rig rig(o);
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("DXT"), 10'000'000);
    rig.gpu->run(60000);
    // Stationary compute kernels should not retrigger profiling often.
    EXPECT_LE(rig.dyn->profileRounds(), 3u);
}

TEST(WarpedSlicer, MonitorDisabledNeverReprofiles)
{
    WarpedSlicerOptions o = fastOpts();
    o.phaseMonitor = false;
    Rig rig(o);
    rig.gpu->launchKernel(benchmark("IMG"), 10'000'000);
    rig.gpu->launchKernel(benchmark("BLK"), 10'000'000);
    rig.gpu->run(100000);
    EXPECT_EQ(rig.dyn->profileRounds(), 1u);
}

TEST(WarpedSlicer, EndToEndCoRunCompletes)
{
    const Cycle window = 20000;
    Characterization chars(cfg, window);
    CoRunOptions opts;
    opts.slicer = scaledSlicerOptions(window);
    const std::vector<KernelParams> apps = {benchmark("IMG"),
                                            benchmark("NN")};
    const std::vector<std::uint64_t> targets = {chars.target("IMG"),
                                                chars.target("NN")};
    const CoRunResult r =
        runCoSchedule(apps, targets, PolicyKind::Dynamic, cfg, opts);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.apps.size(), 2u);
    EXPECT_GE(r.apps[0].insts, targets[0]);
    EXPECT_GE(r.apps[1].insts, targets[1]);
    EXPECT_FALSE(r.chosenCtas.empty());
}
