/**
 * @file
 * Unit and property tests for Algorithm 1 (water-filling partitioning)
 * including equivalence with the exhaustive max-min search on swept
 * random instances.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/waterfill.hh"

using namespace wsl;

namespace {

/** One-dimensional demand helper: perCta = {r,0,0,1}. */
KernelDemand
demand(unsigned regs_per_cta, std::vector<double> perf)
{
    KernelDemand d;
    d.perCta = ResourceVec{regs_per_cta, 0, 0, 1};
    d.perf = std::move(perf);
    return d;
}

const ResourceVec cap8{32768, 48 * 1024, 1536, 8};

} // namespace

TEST(WaterFill, SingleKernelTakesItsPeak)
{
    // Monotone curve: should get all 8 CTAs.
    const auto r = waterFill(
        {demand(1000, {1, 2, 3, 4, 5, 6, 7, 8})}, cap8);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.ctas[0], 8);
    EXPECT_DOUBLE_EQ(r.normPerf[0], 1.0);
}

TEST(WaterFill, CacheSensitiveKernelStopsAtItsPeak)
{
    // Peak at 3 CTAs; extra CTAs would hurt, so they are never granted.
    const auto r = waterFill(
        {demand(1000, {1, 2, 5, 4, 3, 2, 1, 1})}, cap8);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.ctas[0], 3);
    EXPECT_DOUBLE_EQ(r.normPerf[0], 1.0);
}

TEST(WaterFill, TwoKernelsBalanceNormalizedLoss)
{
    // Kernel A is within 10% of peak at one CTA; kernel B is linear.
    // Max-min balance gives B seven slots (0.875) rather than pulling
    // A to its peak (which would drop B to 0.75).
    const auto r = waterFill(
        {demand(1000, {0.9, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}),
         demand(1000, {1, 2, 3, 4, 5, 6, 7, 8})},
        cap8);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.ctas[0], 1);
    EXPECT_EQ(r.ctas[1], 7);
    EXPECT_DOUBLE_EQ(r.normPerf[0], 0.9);
    EXPECT_DOUBLE_EQ(r.normPerf[1], 7.0 / 8.0);
    EXPECT_DOUBLE_EQ(r.minNormPerf, 7.0 / 8.0);
}

TEST(WaterFill, MinimumOneCtaEach)
{
    const auto r = waterFill(
        {demand(1000, {1, 2}), demand(1000, {1, 2}),
         demand(1000, {1, 2})},
        ResourceVec{32768, 48 * 1024, 1536, 3});
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.ctas[0], 1);
    EXPECT_EQ(r.ctas[1], 1);
    EXPECT_EQ(r.ctas[2], 1);
}

TEST(WaterFill, InfeasibleWhenMinimumDoesNotFit)
{
    const auto r = waterFill(
        {demand(20000, {1.0}), demand(20000, {1.0})},
        ResourceVec{32768, 48 * 1024, 1536, 8});
    EXPECT_FALSE(r.feasible);
}

TEST(WaterFill, RespectsEveryResourceDimension)
{
    // Plenty of registers but only 2 CTA slots.
    const auto r = waterFill(
        {demand(10, {1, 2, 3, 4}), demand(10, {1, 2, 3, 4})},
        ResourceVec{32768, 48 * 1024, 1536, 2});
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.ctas[0] + r.ctas[1], 2);
}

TEST(WaterFill, SkipsPlateausWithMultiCtaJumps)
{
    // Performance improves only at 1, 4, and 8 CTAs: dT jumps 3 then 4.
    const auto r = waterFill(
        {demand(1000, {1, 1, 1, 2, 2, 2, 2, 3}),
         demand(1000, {1, 1, 1, 1, 1, 1, 1, 1})},
        cap8);
    ASSERT_TRUE(r.feasible);
    // Kernel 1 is flat: stays at 1 CTA. Kernel 0 should jump to 4 and
    // then cannot afford 8 (would need 8 + 1 = 9 slots): lands on 4...
    // 4 + 1 = 5 <= 8, next jump needs T0 = 8 => 9 slots > 8.
    EXPECT_EQ(r.ctas[1], 1);
    EXPECT_EQ(r.ctas[0], 4);
}

TEST(WaterFill, WorstKernelIsRaisedFirst)
{
    // Both linear, but kernel 0 has double the per-CTA cost; max-min
    // balance should still equalize normalized perf, favoring the
    // cheaper kernel with leftover space.
    const auto r = waterFill(
        {demand(8000, {1, 2, 3, 4}), demand(1000, {1, 2, 3, 4, 5, 6})},
        ResourceVec{32768, 48 * 1024, 1536, 8});
    ASSERT_TRUE(r.feasible);
    // Kernel 0: 4 CTAs = 32000 regs won't leave room; expect a split
    // where min normalized perf is maximized.
    const auto ex = exhaustiveSweetSpot(
        {demand(8000, {1, 2, 3, 4}), demand(1000, {1, 2, 3, 4, 5, 6})},
        ResourceVec{32768, 48 * 1024, 1536, 8});
    EXPECT_NEAR(r.minNormPerf, ex.minNormPerf, 1e-9);
}

TEST(WaterFill, ZeroPerfCurveHandled)
{
    const auto r = waterFill(
        {demand(1000, {0, 0, 0}), demand(1000, {1, 2, 3})}, cap8);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.ctas[0], 1);  // degenerate kernel keeps its minimum
}

TEST(WaterFill, EmptyInput)
{
    const auto r = waterFill({}, cap8);
    EXPECT_FALSE(r.feasible);
    EXPECT_TRUE(r.ctas.empty());
}

TEST(WaterFill, UsedResourcesAreConsistent)
{
    const std::vector<KernelDemand> demands = {
        demand(3000, {1, 2, 3, 4, 5, 6, 7, 8}),
        demand(5000, {2, 3, 3.5, 3.6, 3.6, 3.6, 3.6, 3.6})};
    const auto r = waterFill(demands, cap8);
    ASSERT_TRUE(r.feasible);
    ResourceVec expect;
    for (std::size_t i = 0; i < demands.size(); ++i)
        expect = expect + demands[i].perCta.scaled(r.ctas[i]);
    EXPECT_EQ(r.used, expect);
    EXPECT_TRUE(r.used.fitsIn(cap8));
}

TEST(ExhaustiveSweetSpot, MatchesHandExample)
{
    // The paper's Figure 3b example: IMG-like rising curve vs NN-like
    // peaked curve; a 60/40-ish split should beat even split.
    const std::vector<KernelDemand> demands = {
        demand(2000, {0.2, 0.4, 0.55, 0.7, 0.82, 0.9, 0.96, 1.0}),
        demand(2000, {0.5, 0.9, 1.0, 0.97, 0.95, 0.9, 0.85, 0.8})};
    const auto ex = exhaustiveSweetSpot(demands, cap8);
    ASSERT_TRUE(ex.feasible);
    EXPECT_EQ(ex.ctas[0] + ex.ctas[1], 8);
    EXPECT_GT(ex.ctas[0], 4);  // the rising kernel needs more
    const auto wf = waterFill(demands, cap8);
    EXPECT_EQ(wf.ctas, ex.ctas);
}

// ---- Property sweep: waterFill == exhaustive on random instances ----

class WaterFillRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(WaterFillRandom, AchievesExhaustiveObjective)
{
    Rng rng(GetParam());
    const unsigned num_kernels = 2 + rng.range(2);  // 2..3
    std::vector<KernelDemand> demands;
    for (unsigned k = 0; k < num_kernels; ++k) {
        const unsigned n = 3 + rng.range(6);  // 3..8 CTA points
        std::vector<double> perf;
        double level = rng.uniform();
        for (unsigned j = 0; j < n; ++j) {
            // Random walk with occasional declines (cache-like).
            level += rng.uniform() - 0.3;
            perf.push_back(std::max(0.05, level));
        }
        KernelDemand d;
        d.perCta = ResourceVec{
            static_cast<unsigned>(500 + rng.range(5000)),
            static_cast<unsigned>(rng.range(8000)),
            static_cast<unsigned>(64 + rng.range(448)), 1};
        d.perf = perf;
        demands.push_back(d);
    }
    const auto wf = waterFill(demands, cap8);
    const auto ex = exhaustiveSweetSpot(demands, cap8);
    ASSERT_EQ(wf.feasible, ex.feasible);
    if (!wf.feasible)
        return;
    // The greedy water-filling is provably optimal for the max-min
    // objective over the monotone hull; it must match the exhaustive
    // search's objective value.
    EXPECT_NEAR(wf.minNormPerf, ex.minNormPerf, 1e-9)
        << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterFillRandom,
                         ::testing::Range(1, 41));

TEST(WaterFill, LargeInstanceIsFast)
{
    // O(K*N): 4 kernels x 32 CTA levels must run instantly.
    std::vector<KernelDemand> demands;
    for (int k = 0; k < 4; ++k) {
        std::vector<double> perf;
        for (int j = 0; j < 32; ++j)
            perf.push_back(j + 1);
        KernelDemand d;
        d.perCta = ResourceVec{256, 0, 32, 1};
        d.perf = perf;
        demands.push_back(d);
    }
    const auto r =
        waterFill(demands, ResourceVec{65536, 98304, 2048, 32});
    ASSERT_TRUE(r.feasible);
    int total = 0;
    for (int t : r.ctas)
        total += t;
    EXPECT_LE(total, 32);
    EXPECT_GE(total, 29);  // nearly all slots spent
}

// ---- Shared-resource budget constraints (interference extension) ----

TEST(WaterFillBudget, BandwidthCurveLimitsAllocation)
{
    // Kernel 0 is a streaming kernel whose bandwidth demand grows with
    // CTAs; the budget stops it mid-curve even though slots remain.
    KernelDemand mem = demand(1000, {1, 2, 3, 4, 5, 6, 7, 8});
    mem.bwCurve = {0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08};
    KernelDemand cpu = demand(1000, {1, 2, 3, 4});
    const auto r = waterFill({mem, cpu}, cap8, 0.045);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.ctas[0], 4);  // 5 CTAs would need 0.05 > 0.045
    EXPECT_EQ(r.ctas[1], 4);  // unconstrained kernel fills up
}

TEST(WaterFillBudget, BudgetSharedAcrossKernels)
{
    KernelDemand a = demand(1000, {1, 2, 3, 4, 5, 6, 7, 8});
    a.bwCurve = {0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14, 0.16};
    KernelDemand b = a;
    const auto r = waterFill({a, b}, cap8, 0.12);
    ASSERT_TRUE(r.feasible);
    // Combined demand at (T0,T1) must stay within 0.12.
    const double used = 0.02 * r.ctas[0] + 0.02 * r.ctas[1];
    EXPECT_LE(used, 0.12 + 1e-9);
    EXPECT_GE(r.ctas[0] + r.ctas[1], 5);  // budget mostly spent
}

TEST(WaterFillBudget, MinimumAllocationIgnoresBudget)
{
    // Even when one CTA each already exceeds the budget, every kernel
    // keeps its guaranteed minimum.
    KernelDemand a = demand(1000, {1, 2});
    a.bwCurve = {0.5, 1.0};
    KernelDemand b = a;
    const auto r = waterFill({a, b}, cap8, 0.1);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.ctas[0], 1);
    EXPECT_EQ(r.ctas[1], 1);
}

TEST(WaterFillBudget, AluCurveConstrains)
{
    KernelDemand hot = demand(1000, {1, 2, 3, 4, 5, 6, 7, 8});
    hot.aluCurve = {0.3, 0.6, 0.9, 1.2, 1.5, 1.8, 2.1, 2.4};
    KernelDemand cool = demand(1000, {1, 2, 3, 4});
    cool.aluCurve = {0.1, 0.2, 0.3, 0.4};
    const auto r = waterFill({hot, cool}, cap8, 0.0, 1.9);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(hot.aluCurve[r.ctas[0] - 1] +
                  cool.aluCurve[r.ctas[1] - 1],
              1.9 + 1e-9);
}

TEST(WaterFillBudget, ZeroBudgetsDisableConstraints)
{
    KernelDemand a = demand(1000, {1, 2, 3, 4, 5, 6, 7, 8});
    a.bwCurve = {1, 2, 3, 4, 5, 6, 7, 8};
    a.aluCurve = a.bwCurve;
    const auto r = waterFill({a}, cap8, 0.0, 0.0);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.ctas[0], 8);
}
