/**
 * @file
 * wslicer-fuzz: randomized integrity fuzzing for the simulator.
 *
 * Each seed deterministically generates a machine configuration and a
 * small co-scheduled kernel mix (sizes, register/shared-memory
 * pressure, barrier and divergence behavior, memory patterns), then
 * runs it with the invariant auditor at maximum cadence and the
 * no-progress watchdog armed. Any InvariantViolation, DeadlockError,
 * or InternalError is a finding: the driver re-runs the same seed with
 * clock skipping disabled to shrink the failure to its first failing
 * cycle on the reference loop, prints both reports, and exits
 * non-zero.
 *
 *   wslicer-fuzz [--seeds N] [--start-seed S] [--cycles C]
 *                [--cadence K] [--watchdog W] [--no-skip]
 *                [--snapshot]
 *
 * Defaults: 50 seeds from 1, 20000 cycles each, audit cadence 1,
 * watchdog 10000 cycles, clock skipping randomized per seed.
 *
 * --snapshot switches every seed to a snapshot round-trip probe: the
 * scenario runs cold to completion, then again to a random cycle
 * horizon where the machine is serialized, and both the interrupted
 * donor (continued in place) and a fresh machine restored from the
 * snapshot must land on the cold run's exact final state. Any
 * divergence — or any SimError raised on the restored machine, which
 * runs with the same max-cadence auditor — is a finding and shrinks
 * like the classic mode.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "harness/runner.hh"
#include "snapshot/snapshot.hh"

using namespace wsl;

namespace {

struct FuzzOptions
{
    std::uint64_t seeds = 50;
    std::uint64_t startSeed = 1;
    Cycle cycles = 20'000;
    Cycle cadence = 1;
    Cycle watchdog = 10'000;
    bool forceNoSkip = false;
    bool snapshotMode = false;  //!< random-horizon round-trip probes
};

struct Scenario
{
    GpuConfig cfg;
    std::vector<KernelParams> kernels;
    PolicyKind kind = PolicyKind::LeftOver;
};

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: wslicer-fuzz [--seeds N] [--start-seed S] "
                 "[--cycles C] [--cadence K] [--watchdog W] "
                 "[--no-skip] [--snapshot]\n");
    std::exit(2);
}

KernelParams
randomKernel(Rng &rng, const GpuConfig &cfg, unsigned index)
{
    KernelParams k;
    k.name = "FZ" + std::to_string(index);
    k.gridDim = 8 + static_cast<unsigned>(rng.range(248));
    const unsigned block_choices[] = {32, 64, 128, 256};
    k.blockDim = block_choices[rng.range(4)];
    const unsigned reg_choices[] = {8, 16, 21, 32};
    k.regsPerThread = reg_choices[rng.range(4)];
    // Shared memory clamped so at least one CTA always fits.
    if (rng.chance(0.4)) {
        k.shmPerCta = static_cast<unsigned>(
            1024 + rng.range(cfg.sharedMemPerSm / 2));
    }
    k.mix.alu = 1 + static_cast<unsigned>(rng.range(10));
    k.mix.sfu = static_cast<unsigned>(rng.range(3));
    k.mix.ldGlobal = static_cast<unsigned>(rng.range(4));
    k.mix.stGlobal = static_cast<unsigned>(rng.range(2));
    k.mix.ldShared =
        k.shmPerCta ? static_cast<unsigned>(rng.range(3)) : 0;
    k.mix.stShared =
        k.shmPerCta ? static_cast<unsigned>(rng.range(2)) : 0;
    k.mix.depDist = 1 + static_cast<unsigned>(rng.range(8));
    k.mix.barrierPerIter = rng.chance(0.4);
    k.mix.divBranches = static_cast<unsigned>(rng.range(3));
    k.loopIters = 4 + static_cast<unsigned>(rng.range(60));
    const MemPattern patterns[] = {MemPattern::Stream, MemPattern::Tile,
                                   MemPattern::Scatter};
    k.mem.pattern = patterns[rng.range(3)];
    k.mem.footprintPerCta = std::uint64_t{1} << (10 + rng.range(11));
    k.mem.transactionsPerAccess =
        1 + static_cast<unsigned>(rng.range(4));
    k.ifetchMissRate = rng.uniform() * 0.05;
    if (k.mix.ldShared + k.mix.stShared > 0)
        k.shmConflictFactor = 1 + static_cast<unsigned>(rng.range(4));
    return k;
}

/** Deterministically derive the whole scenario from one seed. */
Scenario
buildScenario(std::uint64_t seed, const FuzzOptions &opt)
{
    Rng rng(seed);
    Scenario sc;
    sc.cfg = rng.chance(0.25) ? GpuConfig::largeResource()
                              : GpuConfig::baseline();
    const unsigned sm_choices[] = {4, 8, 16};
    sc.cfg.numSms = sm_choices[rng.range(3)];
    const unsigned part_choices[] = {2, 4, 6};
    sc.cfg.numMemPartitions = part_choices[rng.range(3)];
    const unsigned mshr_choices[] = {8, 16, 32, 64};
    sc.cfg.l1Mshrs = mshr_choices[rng.range(4)];
    sc.cfg.scheduler =
        rng.chance(0.5) ? SchedulerKind::Gto : SchedulerKind::Lrr;
    sc.cfg.clockSkip = opt.forceNoSkip ? false : rng.chance(0.7);
    sc.cfg.auditCadence = opt.cadence;
    sc.cfg.watchdogCycles = opt.watchdog;
    sc.cfg.seed = seed;

    const unsigned nkernels = 2 + static_cast<unsigned>(rng.range(2));
    for (unsigned i = 0; i < nkernels; ++i)
        sc.kernels.push_back(randomKernel(rng, sc.cfg, i));

    const PolicyKind kinds[] = {PolicyKind::LeftOver, PolicyKind::Even,
                                PolicyKind::Spatial,
                                PolicyKind::Dynamic};
    sc.kind = kinds[rng.range(4)];
    return sc;
}

/** Run one scenario; returns the error message, or empty on success. */
std::string
runScenario(const Scenario &sc, Cycle cycles)
{
    try {
        sc.cfg.validate();
        Gpu gpu(sc.cfg,
                makePolicy(sc.kind, scaledSlicerOptions(cycles)));
        for (const KernelParams &k : sc.kernels)
            gpu.launchKernel(k);
        gpu.run(cycles);
        if (gpu.integrityAuditor())
            gpu.integrityAuditor()->runChecks(gpu);  // final state
    } catch (const DeadlockError &e) {
        return std::string("deadlock: ") + e.what() + "\n" +
               e.report();
    } catch (const SimError &e) {
        return std::string(e.kindName()) + ": " + e.what();
    }
    return {};
}

/** Compact end-of-run machine digest for divergence comparison. */
struct FuzzDigest
{
    Cycle cycle = 0;
    GpuStats stats;
    std::vector<std::uint64_t> kernels;

    bool
    operator==(const FuzzDigest &o) const
    {
        if (cycle != o.cycle || kernels != o.kernels)
            return false;
        bool eq = true;
        SmStats::forEachField([&](const char *, auto m) {
            if (!(stats.*m == o.stats.*m))
                eq = false;
        });
        PartitionStats::forEachField([&](const char *, auto m) {
            if (!(stats.*m == o.stats.*m))
                eq = false;
        });
        return eq;
    }
};

FuzzDigest
fuzzDigest(const Gpu &gpu)
{
    FuzzDigest d;
    d.cycle = gpu.cycle();
    d.stats = gpu.collectStats();
    for (std::size_t k = 0; k < gpu.numKernels(); ++k) {
        const KernelInstance &ki = gpu.kernel(static_cast<KernelId>(k));
        d.kernels.push_back(ki.nextCta);
        d.kernels.push_back(ki.ctasCompleted);
        d.kernels.push_back(ki.done ? 1 : 0);
        d.kernels.push_back(ki.finishCycle);
    }
    return d;
}

/**
 * Snapshot round-trip probe for one scenario: cold reference run,
 * interrupted run with a snapshot at a random horizon, and a restored
 * run, all of which must agree bit-for-bit. Returns the finding, or
 * empty when the seed is clean.
 */
std::string
runSnapshotScenario(const Scenario &sc, Cycle cycles,
                    std::uint64_t seed)
{
    try {
        sc.cfg.validate();
        // The horizon draws from a separate stream so it never
        // perturbs the scenario generator's sequence.
        Rng pick(seed ^ 0x5eedULL);
        const Cycle t = 1 + pick.range(cycles - 1);

        auto machine = [&] {
            auto gpu = std::make_unique<Gpu>(
                sc.cfg, makePolicy(sc.kind, scaledSlicerOptions(cycles)));
            for (const KernelParams &k : sc.kernels)
                gpu->launchKernel(k);
            return gpu;
        };
        // run() is relative and returns early once all kernels drain,
        // so aim every machine at the same absolute end cycle.
        auto run_to = [](Gpu &gpu, Cycle end) {
            if (end > gpu.cycle())
                gpu.run(end - gpu.cycle());
        };

        auto cold = machine();
        run_to(*cold, cycles);
        const FuzzDigest want = fuzzDigest(*cold);

        auto donor = machine();
        run_to(*donor, t);
        const std::vector<std::uint8_t> snap = saveSnapshot(*donor);
        run_to(*donor, cycles);
        if (!(fuzzDigest(*donor) == want)) {
            return "snapshot divergence: interrupted donor differs "
                   "from the cold run after continuing (capture @ " +
                   std::to_string(t) + ") — saving mutated state";
        }

        auto restored = std::make_unique<Gpu>(
            sc.cfg, makePolicy(sc.kind, scaledSlicerOptions(cycles)));
        restoreSnapshot(*restored, snap);
        run_to(*restored, cycles);
        if (restored->integrityAuditor())
            restored->integrityAuditor()->runChecks(*restored);
        if (!(fuzzDigest(*restored) == want)) {
            return "snapshot divergence: restored machine differs "
                   "from the cold run (capture @ " +
                   std::to_string(t) + ")";
        }
    } catch (const DeadlockError &e) {
        return std::string("deadlock: ") + e.what() + "\n" +
               e.report();
    } catch (const SimError &e) {
        return std::string(e.kindName()) + ": " + e.what();
    }
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--seeds")
            opt.seeds = std::strtoull(next(), nullptr, 10);
        else if (arg == "--start-seed")
            opt.startSeed = std::strtoull(next(), nullptr, 10);
        else if (arg == "--cycles")
            opt.cycles = std::strtoull(next(), nullptr, 10);
        else if (arg == "--cadence")
            opt.cadence = std::strtoull(next(), nullptr, 10);
        else if (arg == "--watchdog")
            opt.watchdog = std::strtoull(next(), nullptr, 10);
        else if (arg == "--no-skip")
            opt.forceNoSkip = true;
        else if (arg == "--snapshot")
            opt.snapshotMode = true;
        else
            usage();
    }
    if (opt.seeds == 0 || opt.cadence == 0)
        usage();

    unsigned failures = 0;
    for (std::uint64_t s = 0; s < opt.seeds; ++s) {
        const std::uint64_t seed = opt.startSeed + s;
        const Scenario sc = buildScenario(seed, opt);
        const std::string err =
            opt.snapshotMode
                ? runSnapshotScenario(sc, opt.cycles, seed)
                : runScenario(sc, opt.cycles);
        if (err.empty()) {
            if ((s + 1) % 10 == 0 || s + 1 == opt.seeds)
                std::printf("fuzz: %llu/%llu seeds clean\n",
                            static_cast<unsigned long long>(s + 1),
                            static_cast<unsigned long long>(opt.seeds));
            continue;
        }
        ++failures;
        std::printf("fuzz: seed %llu FAILED (%u kernels, %s, "
                    "clockSkip=%d)\n%s\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned>(sc.kernels.size()),
                    policyName(sc.kind), sc.cfg.clockSkip ? 1 : 0,
                    err.c_str());
        // Shrink: same seed on the per-cycle reference loop at audit
        // cadence 1 pins the first failing cycle and tells skip bugs
        // apart from genuine invariant breaks.
        FuzzOptions shrink_opt = opt;
        shrink_opt.cadence = 1;
        shrink_opt.forceNoSkip = true;
        Scenario shrunk = buildScenario(seed, shrink_opt);
        shrunk.cfg.clockSkip = false;
        const std::string shrunk_err =
            opt.snapshotMode
                ? runSnapshotScenario(shrunk, opt.cycles, seed)
                : runScenario(shrunk, opt.cycles);
        if (shrunk_err.empty()) {
            std::printf("fuzz: seed %llu shrink: clean without clock "
                        "skipping — suspect the skip fast path\n",
                        static_cast<unsigned long long>(seed));
        } else {
            std::printf("fuzz: seed %llu shrink (no-skip, cadence 1):\n"
                        "%s\n",
                        static_cast<unsigned long long>(seed),
                        shrunk_err.c_str());
        }
    }
    if (failures != 0) {
        std::printf("fuzz: %u of %llu seeds failed\n", failures,
                    static_cast<unsigned long long>(opt.seeds));
        return 1;
    }
    std::printf("fuzz: all %llu seeds clean\n",
                static_cast<unsigned long long>(opt.seeds));
    return 0;
}
