/**
 * @file
 * wslicer-report: offline analysis of wslicer run artifacts.
 *
 *   wslicer-report explain <decisions.json>
 *       Render a Dynamic-policy decision log as a "why this split"
 *       report: water-filling inputs, candidate raises and why each
 *       was accepted or refused, the chosen partition, and predicted
 *       vs realized IPC.
 *
 *   wslicer-report check <manifest.json>
 *       Validate a run manifest. Exit 0 when well-formed, 2 when
 *       malformed (missing schema/fields, non-numeric counters).
 *
 *   wslicer-report diff <base.json> <fresh.json> [--threshold X]
 *       Compare two manifests or BENCH JSONs. Exit 0 when clean,
 *       1 when a throughput or bit-identity key regressed, 2 when
 *       either input is malformed. Thread-sensitive keys are skipped
 *       when the two runs were recorded on hosts with different
 *       hardware_threads.
 *
 *   wslicer-report slo <serve.json>
 *       Render a serving-run SLO report (`wslicer-sim serve --slo`)
 *       as a per-class summary and re-check its outcome-conservation
 *       ledger. Exit 0 on a clean ledger, 1 when the ledger is
 *       broken, 2 when the input is not a serve report.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/report.hh"

namespace {

int
usage()
{
    std::cerr
        << "usage: wslicer-report explain <decisions.json>\n"
        << "       wslicer-report check <manifest.json>\n"
        << "       wslicer-report diff <base.json> <fresh.json>"
        << " [--threshold X]\n"
        << "       wslicer-report slo <serve.json>\n";
    return 2;
}

/** Load and parse a JSON file; exits 2 on any failure. */
bool
loadJson(const std::string &path, wsl::JsonValue &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "wslicer-report: cannot open '" << path
                  << "'\n";
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!wsl::parseJson(buffer.str(), out, error)) {
        std::cerr << "wslicer-report: '" << path << "': " << error
                  << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];
    // CI invokes `wslicer-report --check manifest.json`; accept the
    // flag spellings as aliases for the subcommands.
    if (cmd == "--check")
        cmd = "check";
    else if (cmd == "--explain")
        cmd = "explain";
    else if (cmd == "--diff")
        cmd = "diff";
    else if (cmd == "--slo")
        cmd = "slo";

    if (cmd == "explain") {
        wsl::JsonValue doc;
        if (!loadJson(argv[2], doc))
            return 2;
        std::string error;
        if (!wsl::renderDecisionLog(doc, std::cout, error)) {
            std::cerr << "wslicer-report: " << argv[2] << ": "
                      << error << "\n";
            return 2;
        }
        return 0;
    }

    if (cmd == "check") {
        wsl::JsonValue doc;
        if (!loadJson(argv[2], doc))
            return 2;
        std::string error;
        if (!wsl::checkManifest(doc, error)) {
            std::cerr << "wslicer-report: " << argv[2]
                      << ": malformed manifest: " << error << "\n";
            return 2;
        }
        std::cout << argv[2] << ": ok\n";
        return 0;
    }

    if (cmd == "slo") {
        wsl::JsonValue doc;
        if (!loadJson(argv[2], doc))
            return 2;
        std::string error;
        std::ostringstream rendered;
        if (!wsl::renderSloReport(doc, rendered, error)) {
            std::cerr << "wslicer-report: " << argv[2] << ": "
                      << error << "\n";
            return 2;
        }
        std::cout << rendered.str();
        // The renderer re-verifies the outcome-conservation ledger;
        // surface a broken one as a failing exit for CI gates.
        return rendered.str().find("BROKEN") == std::string::npos ? 0
                                                                  : 1;
    }

    if (cmd == "diff") {
        if (argc < 4)
            return usage();
        double threshold = 0.20;
        for (int i = 4; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--threshold" && i + 1 < argc)
                threshold = std::strtod(argv[++i], nullptr);
            else
                return usage();
        }
        wsl::JsonValue base, fresh;
        if (!loadJson(argv[2], base) || !loadJson(argv[3], fresh))
            return 2;
        const wsl::DiffResult diff =
            wsl::diffResults(base, fresh, threshold);
        wsl::writeDiff(diff, std::cout);
        return diff.exitCode();
    }

    return usage();
}
