/**
 * @file
 * wslicer-sim: command-line driver for the simulator.
 *
 *   wslicer-sim list
 *       List the available benchmark kernels and their parameters.
 *
 *   wslicer-sim solo BENCH [--cycles N] [--ctas Q] [--large]
 *       Run one benchmark in isolation and dump its statistics.
 *
 *   wslicer-sim curves BENCH [--cycles N] [--large]
 *       Print the performance-vs-CTA-occupancy curve (Figure 3a).
 *
 *   wslicer-sim corun BENCH1 BENCH2 [BENCH3]
 *       [--policy leftover|spatial|even|dynamic|fixed:Q1,Q2[,Q3]]
 *       [--window N] [--sched gto|lrr] [--large]
 *       [--stats-interval N] [--timeline FILE]
 *       Co-run benchmarks under a multiprogramming policy using the
 *       paper's instruction-target methodology. --stats-interval
 *       samples interval telemetry every N cycles (--csv/--json then
 *       export the time series instead of the summary table);
 *       --timeline writes a Chrome trace-event JSON file for
 *       ui.perfetto.dev.
 *
 *   wslicer-sim combos BENCH1 BENCH2 [--window N]
 *       Exhaustively evaluate every feasible CTA partition (the
 *       oracle's search space).
 *
 *   wslicer-sim serve [--rate R] [--closed-loop] [--horizon N]
 *       [--quantum N] [--max-batch K] [--seed N]
 *       [--chaos-seed N [--chaos-faults N]] [--slo FILE]
 *       Run the long-lived multi-tenant serving layer: seeded
 *       open-loop Poisson (or closed-loop) arrivals over the default
 *       tenant-class mix, admission control with bounded queues and
 *       deadline-feasibility shedding, EDF dispatch with preemption,
 *       and — with --chaos-seed — seeded fault injection with
 *       snapshot-rollback recovery and tenant quarantine. --slo
 *       writes the per-class SLO report (wslicer-report slo renders
 *       it). Exits non-zero if any organic invariant violation
 *       occurred.
 *
 * Global options: --csv FILE | --json FILE write the result table to a
 * file in addition to the text output. --jobs N (or WSL_JOBS) runs
 * independent simulations on N worker threads (0 = all hardware
 * threads); results are bit-identical to serial runs.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/log.hh"
#include "harness/parallel.hh"
#include "harness/runner.hh"
#include "obs/decision_log.hh"
#include "obs/engine_profiler.hh"
#include "obs/manifest.hh"
#include "obs/registry.hh"
#include "report/table.hh"
#include "serve/engine.hh"
#include "snapshot/snapshot.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeline.hh"
#include "trace/tracer.hh"

using namespace wsl;

namespace {

struct Options
{
    std::string command;
    std::vector<std::string> benchNames;
    Cycle cycles = 0;      // 0 = defaultWindow()
    int ctas = -1;
    std::string policy = "dynamic";
    SchedulerKind sched = SchedulerKind::Gto;
    bool large = false;
    std::string preset;  //!< baseline|large|dc ("" = --large/baseline)
    bool noSkip = false;  //!< force the per-cycle reference loop
    Cycle auditCadence = 0;    //!< 0 = integrity audits off
    Cycle watchdogCycles = 0;  //!< 0 = no-progress watchdog off
    std::string csvPath;
    std::string jsonPath;
    std::string tracePath;
    std::string timelinePath;
    std::string decisionLogPath;  //!< Dynamic-policy decision log JSON
    std::string profilePath;      //!< engine self-profiler JSON
    std::string manifestPath;     //!< run manifest JSON
    std::string promPath;         //!< Prometheus counter dump
    std::string snapshotPath;     //!< checkpoint output (--snapshot)
    Cycle snapshotAt = 0;         //!< capture cycle; 0 = window / 2
    Cycle checkpointEvery = 0;    //!< periodic checkpoint cadence
    std::string restorePath;      //!< resume from this snapshot
    Cycle statsInterval = 0;  //!< 0 = telemetry off
    // ---- serve ----
    double rate = 1.0;            //!< open-loop arrivals per 10k cycles
    bool closedLoop = false;
    Cycle horizon = 0;            //!< 0 = 6x window
    Cycle quantum = 0;            //!< 0 = window / 4
    unsigned maxBatch = 3;
    std::uint64_t seed = 1;
    std::uint64_t chaosSeed = 0;  //!< 0 = chaos off
    unsigned chaosFaults = 6;
    std::string sloPath;          //!< SLO JSON report
    unsigned jobs = defaultJobs();  //!< worker threads (WSL_JOBS)
    /** Intra-run tick threads (WSL_TICK_THREADS); composed against
     *  --jobs by the batch paths so the two never oversubscribe. */
    unsigned tickThreads = defaultTickThreads();
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s list | solo BENCH | curves BENCH | "
                 "corun B1 B2 [B3] | combos B1 B2 | serve [options]\n"
                 "options: --cycles N --window N --ctas Q --large\n"
                 "         --preset baseline|large|dc (dc: 128 SMs / "
                 "32 partitions, engine-scaling machine)\n"
                 "         --policy leftover|spatial|even|dynamic|"
                 "fixed:Q1,Q2[,Q3]\n"
                 "         --sched gto|lrr --csv FILE --json FILE --trace FILE\n"
                 "         --stats-interval N --timeline FILE --jobs N\n"
                 "         --tick-threads N|auto (shard each run's "
                 "SM/partition ticks over N threads; bit-identical; "
                 "auto picks serial vs pooled from the machine)\n"
                 "         --no-skip (disable event-horizon clock "
                 "skipping; bit-identical, slower)\n"
                 "         --audit[=N] (run integrity audits every N "
                 "cycles; default 10000)\n"
                 "         --watchdog-cycles N (fail with a deadlock "
                 "report after N cycles without progress)\n"
                 "observability (corun): --decision-log FILE "
                 "--profile FILE\n"
                 "         --manifest FILE --prom FILE\n"
                 "checkpointing (corun): --snapshot FILE "
                 "[--snapshot-at N | --checkpoint-every N]\n"
                 "         --restore FILE (resume a checkpointed run; "
                 "bit-identical to the uninterrupted run)\n"
                 "serving (serve): --rate R (arrivals per 10k cycles) "
                 "--closed-loop --horizon N --quantum N\n"
                 "         --max-batch K --seed N --slo FILE\n"
                 "         --chaos-seed N [--chaos-faults N] (seeded "
                 "fault injection; deterministic per seed)\n",
                 argv0);
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    Options opt;
    opt.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--cycles" || arg == "--window")
            opt.cycles = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--ctas")
            opt.ctas = std::atoi(next().c_str());
        else if (arg == "--policy")
            opt.policy = next();
        else if (arg == "--sched")
            opt.sched = next() == "lrr" ? SchedulerKind::Lrr
                                        : SchedulerKind::Gto;
        else if (arg == "--large")
            opt.large = true;
        else if (arg == "--preset")
            opt.preset = next();
        else if (arg == "--no-skip")
            opt.noSkip = true;
        else if (arg == "--audit")
            opt.auditCadence = 10'000;
        else if (arg.rfind("--audit=", 0) == 0) {
            opt.auditCadence =
                std::strtoull(arg.c_str() + 8, nullptr, 10);
            if (opt.auditCadence == 0)
                usage(argv[0]);
        } else if (arg == "--watchdog-cycles") {
            opt.watchdogCycles =
                std::strtoull(next().c_str(), nullptr, 10);
            if (opt.watchdogCycles == 0)
                usage(argv[0]);
        }
        else if (arg == "--trace")
            opt.tracePath = next();
        else if (arg == "--decision-log")
            opt.decisionLogPath = next();
        else if (arg == "--profile")
            opt.profilePath = next();
        else if (arg == "--manifest")
            opt.manifestPath = next();
        else if (arg == "--prom")
            opt.promPath = next();
        else if (arg == "--snapshot")
            opt.snapshotPath = next();
        else if (arg == "--snapshot-at") {
            opt.snapshotAt =
                std::strtoull(next().c_str(), nullptr, 10);
            if (opt.snapshotAt == 0)
                usage(argv[0]);
        } else if (arg == "--checkpoint-every") {
            opt.checkpointEvery =
                std::strtoull(next().c_str(), nullptr, 10);
            if (opt.checkpointEvery == 0)
                usage(argv[0]);
        } else if (arg == "--restore")
            opt.restorePath = next();
        else if (arg == "--timeline")
            opt.timelinePath = next();
        else if (arg == "--stats-interval")
            opt.statsInterval =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--jobs")
            opt.jobs = parseJobs(next().c_str(), "--jobs");
        else if (arg == "--tick-threads") {
            const std::string v = next();
            opt.tickThreads =
                v == "auto" ? GpuConfig::tickThreadsAuto
                            : parseJobs(v.c_str(), "--tick-threads");
        }
        else if (arg == "--rate")
            opt.rate = std::strtod(next().c_str(), nullptr);
        else if (arg == "--closed-loop")
            opt.closedLoop = true;
        else if (arg == "--horizon")
            opt.horizon = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--quantum")
            opt.quantum = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--max-batch")
            opt.maxBatch = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--seed")
            opt.seed = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--chaos-seed") {
            opt.chaosSeed = std::strtoull(next().c_str(), nullptr, 10);
            if (opt.chaosSeed == 0)
                usage(argv[0]);
        } else if (arg == "--chaos-faults")
            opt.chaosFaults = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--slo")
            opt.sloPath = next();
        else if (arg == "--csv")
            opt.csvPath = next();
        else if (arg == "--json")
            opt.jsonPath = next();
        else if (!arg.empty() && arg[0] == '-')
            usage(argv[0]);
        else
            opt.benchNames.push_back(arg);
    }
    return opt;
}

GpuConfig
makeConfig(const Options &opt)
{
    GpuConfig cfg;
    if (!opt.preset.empty()) {
        if (opt.preset == "baseline")
            cfg = GpuConfig::baseline();
        else if (opt.preset == "large")
            cfg = GpuConfig::largeResource();
        else if (opt.preset == "dc")
            cfg = GpuConfig::datacenter();
        else
            fatal("unknown --preset '", opt.preset,
                  "' (expected baseline, large, or dc)");
    } else {
        cfg = opt.large ? GpuConfig::largeResource()
                        : GpuConfig::baseline();
    }
    cfg.scheduler = opt.sched;
    cfg.clockSkip = !opt.noSkip;
    cfg.auditCadence = opt.auditCadence;
    cfg.watchdogCycles = opt.watchdogCycles;
    cfg.tickThreads = opt.tickThreads;
    // Fail here with an actionable message, not deep in construction.
    cfg.validate();
    return cfg;
}

void
emit(const Options &opt, const Table &table)
{
    table.writeText(std::cout);
    if (!opt.csvPath.empty()) {
        std::ofstream os(opt.csvPath);
        if (!os)
            fatal("cannot open ", opt.csvPath);
        table.writeCsv(os);
        std::printf("(wrote %s)\n", opt.csvPath.c_str());
    }
    if (!opt.jsonPath.empty()) {
        std::ofstream os(opt.jsonPath);
        if (!os)
            fatal("cannot open ", opt.jsonPath);
        table.writeJson(os);
        std::printf("(wrote %s)\n", opt.jsonPath.c_str());
    }
}

int
cmdList(const Options &opt)
{
    Table table({"name", "class", "grid", "block", "regs/thread",
                 "shm/CTA", "max CTAs/SM"});
    const GpuConfig cfg = makeConfig(opt);
    for (const KernelParams &k : allBenchmarks()) {
        table.addRow({k.name, appClassName(k.cls),
                      std::to_string(k.gridDim),
                      std::to_string(k.blockDim),
                      std::to_string(k.regsPerThread),
                      std::to_string(k.shmPerCta),
                      std::to_string(k.maxCtasPerSm(cfg))});
    }
    emit(opt, table);
    return 0;
}

int
cmdSolo(const Options &opt)
{
    if (opt.benchNames.size() != 1)
        usage("wslicer-sim");
    const GpuConfig cfg = makeConfig(opt);
    const Cycle cycles = opt.cycles ? opt.cycles : defaultWindow();
    const SoloResult r = runSoloForCycles(benchmark(opt.benchNames[0]),
                                          cfg, cycles, opt.ctas);
    Table table({"metric", "value"});
    table.addRow({"benchmark", opt.benchNames[0]});
    table.addRow({"warp_ipc", Table::num(r.warpIpc())});
    for (const auto &[name, value] : flattenStats(r.stats))
        table.addRow({name, Table::num(value)});
    emit(opt, table);
    return 0;
}

int
cmdCurves(const Options &opt)
{
    if (opt.benchNames.size() != 1)
        usage("wslicer-sim");
    const GpuConfig cfg = makeConfig(opt);
    const Cycle cycles =
        opt.cycles ? opt.cycles : defaultWindow() / 2;
    const KernelParams &k = benchmark(opt.benchNames[0]);
    Table table({"ctas_per_sm", "occupancy_pct", "warp_ipc",
                 "normalized"});
    const unsigned max_ctas = k.maxCtasPerSm(cfg);
    const std::vector<double> ipcs = parallelMap<double>(
        max_ctas, opt.jobs, [&](std::size_t i) {
            return runSoloForCycles(k, cfg, cycles,
                                    static_cast<int>(i + 1))
                .warpIpc();
        });
    double peak = 0.0;
    for (double ipc : ipcs)
        peak = std::max(peak, ipc);
    for (unsigned q = 1; q <= max_ctas; ++q) {
        table.addRow({std::to_string(q),
                      std::to_string(100 * q / max_ctas),
                      Table::num(ipcs[q - 1]),
                      Table::num(peak > 0 ? ipcs[q - 1] / peak : 0)});
    }
    emit(opt, table);
    return 0;
}

std::optional<std::vector<int>>
parseFixedPolicy(const std::string &policy, std::size_t num_apps)
{
    if (policy.rfind("fixed:", 0) != 0)
        return std::nullopt;
    std::vector<int> quotas;
    std::string rest = policy.substr(6);
    std::size_t pos = 0;
    while (pos < rest.size()) {
        const std::size_t comma = rest.find(',', pos);
        const std::string tok =
            rest.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        quotas.push_back(std::atoi(tok.c_str()));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    if (quotas.size() != num_apps)
        fatal("fixed: needs one quota per benchmark");
    return quotas;
}

int
cmdCorun(const Options &opt)
{
    if (opt.benchNames.size() < 2 || opt.benchNames.size() > 3)
        usage("wslicer-sim");
    const GpuConfig cfg = makeConfig(opt);
    const Cycle window = opt.cycles ? opt.cycles : defaultWindow();
    Characterization chars(cfg, window);
    chars.prewarm(opt.benchNames, opt.jobs);

    std::vector<KernelParams> apps;
    std::vector<std::uint64_t> targets;
    for (const std::string &name : opt.benchNames) {
        apps.push_back(benchmark(name));
        targets.push_back(chars.target(name));
    }

    CoRunOptions co;
    co.slicer = scaledSlicerOptions(window);
    PolicyKind kind = PolicyKind::Dynamic;
    if (const auto fixed = parseFixedPolicy(opt.policy, apps.size())) {
        co.fixedQuotas = *fixed;
        kind = PolicyKind::LeftOver;
    } else if (opt.policy == "leftover") {
        kind = PolicyKind::LeftOver;
    } else if (opt.policy == "spatial") {
        kind = PolicyKind::Spatial;
    } else if (opt.policy == "even") {
        kind = PolicyKind::Even;
    } else if (opt.policy == "dynamic") {
        kind = PolicyKind::Dynamic;
    } else {
        fatal("unknown policy: ", opt.policy);
    }

    TelemetrySampler sampler(TelemetryConfig{opt.statsInterval, 4096});
    if (sampler.enabled())
        co.telemetry = &sampler;

    // Checkpoint / resume plumbing. A one-shot --snapshot without an
    // explicit cycle captures at the window midpoint — past the
    // Dynamic policy's profiling phase, so the checkpoint carries a
    // settled partition decision.
    co.snapshotPath = opt.snapshotPath;
    co.checkpointEvery = opt.checkpointEvery;
    if (!opt.snapshotPath.empty() && opt.checkpointEvery == 0)
        co.snapshotAt = opt.snapshotAt ? opt.snapshotAt : window / 2;
    co.restorePath = opt.restorePath;
    SnapshotInfo restored;
    if (!opt.restorePath.empty())
        restored = probeSnapshotFile(opt.restorePath);

    // Engine observability: the profiler and decision log attach for
    // the run and are written out afterwards; neither perturbs the
    // simulated outcome (the bit-identity test holds them to that).
    EngineProfiler profiler;
    if (!opt.profilePath.empty() || !opt.manifestPath.empty() ||
        !opt.promPath.empty())
        co.profiler = &profiler;
    DecisionLog decisions;
    if (!opt.decisionLogPath.empty())
        co.decisionLog = &decisions;

    // The characterization solo runs above also record trace events;
    // drop them so the timeline covers only the co-run itself.
    if (Tracer::global().enabled())
        Tracer::global().clear();

    CoRunResult r = runCoSchedule(apps, targets, kind, cfg, co);
    if (restored.valid())
        decisions.setSnapshotProvenance(restored);
    Table table({"metric", "value"});
    table.addRow({"policy", opt.policy});
    if (restored.valid())
        table.addRow({"restored_from_cycle",
                      std::to_string(restored.captureCycle)});
    if (!opt.snapshotPath.empty())
        table.addRow({"snapshot_file", opt.snapshotPath});
    table.addRow({"completed", r.completed ? "yes" : "no"});
    table.addRow({"makespan_cycles", std::to_string(r.makespan)});
    table.addRow({"system_ipc", Table::num(r.sysIpc)});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const std::string &name = opt.benchNames[i];
        r.apps[i].aloneCycles = chars.aloneCycles(name);
        table.addRow({name + "_finish_cycles",
                      std::to_string(r.apps[i].cycles)});
        table.addRow({name + "_speedup_vs_alone",
                      Table::num(speedup(r.apps[i]))});
    }
    table.addRow({"fairness_min_speedup",
                  Table::num(minimumSpeedup(r.apps))});
    table.addRow({"antt", Table::num(antt(r.apps))});
    if (!r.chosenCtas.empty()) {
        std::string ctas;
        for (int t : r.chosenCtas)
            ctas += (ctas.empty() ? "" : ",") + std::to_string(t);
        table.addRow({"dynamic_partition",
                      r.spatialFallback ? "spatial-fallback" : ctas});
    }

    if (sampler.enabled()) {
        // Latency / queue-depth digests from the telemetry harvest.
        for (std::size_t i = 0; i < apps.size(); ++i) {
            const Histogram &h = r.memLatency[i];
            if (h.empty())
                continue;
            const std::string &name = opt.benchNames[i];
            table.addRow({name + "_mem_lat_mean", Table::num(h.mean())});
            table.addRow({name + "_mem_lat_p50",
                          std::to_string(h.percentile(0.5))});
            table.addRow({name + "_mem_lat_p99",
                          std::to_string(h.percentile(0.99))});
        }
        if (!r.mshrOccupancy.empty())
            table.addRow({"l2_mshr_occupancy_mean",
                          Table::num(r.mshrOccupancy.mean())});
        if (!r.dramQueueDepth.empty())
            table.addRow({"dram_queue_depth_mean",
                          Table::num(r.dramQueueDepth.mean())});
        table.addRow({"telemetry_intervals",
                      std::to_string(sampler.intervals().size())});

        // With telemetry on, the machine-readable outputs carry the
        // time series; the summary stays on stdout.
        table.writeText(std::cout);
        if (!opt.csvPath.empty()) {
            std::ofstream os(opt.csvPath);
            if (!os)
                fatal("cannot open ", opt.csvPath);
            sampler.writeCsv(os);
            std::printf("(wrote %s)\n", opt.csvPath.c_str());
        }
        if (!opt.jsonPath.empty()) {
            std::ofstream os(opt.jsonPath);
            if (!os)
                fatal("cannot open ", opt.jsonPath);
            sampler.writeJson(os);
            std::printf("(wrote %s)\n", opt.jsonPath.c_str());
        }
    } else {
        emit(opt, table);
    }

    if (!opt.timelinePath.empty()) {
        std::ofstream os(opt.timelinePath);
        if (!os)
            fatal("cannot open ", opt.timelinePath);
        writeChromeTrace(os, Tracer::global(),
                         sampler.enabled() ? &sampler : nullptr,
                         r.makespan);
        std::printf("(wrote %s)\n", opt.timelinePath.c_str());
    }

    if (!opt.decisionLogPath.empty()) {
        std::ofstream os(opt.decisionLogPath);
        if (!os)
            fatal("cannot open ", opt.decisionLogPath);
        decisions.writeJson(os);
        std::printf("(wrote %s, %zu decisions)\n",
                    opt.decisionLogPath.c_str(),
                    decisions.entries().size());
    }
    if (!opt.profilePath.empty()) {
        std::ofstream os(opt.profilePath);
        if (!os)
            fatal("cannot open ", opt.profilePath);
        profiler.writeJson(os);
        std::printf("(wrote %s)\n", opt.profilePath.c_str());
    }
    if (!opt.manifestPath.empty() || !opt.promPath.empty()) {
        // The Gpu is gone; export from the stats snapshot plus the
        // harvested profiler and process-wide harness counters.
        CounterRegistry registry;
        registerStatsCounters(registry, r.stats);
        if (co.profiler)
            profiler.registerCounters(registry);
        registerHarnessCounters(registry);
        if (!opt.promPath.empty()) {
            std::ofstream os(opt.promPath);
            if (!os)
                fatal("cannot open ", opt.promPath);
            registry.writePrometheus(os);
            std::printf("(wrote %s)\n", opt.promPath.c_str());
        }
        if (!opt.manifestPath.empty()) {
            std::ofstream os(opt.manifestPath);
            if (!os)
                fatal("cannot open ", opt.manifestPath);
            RunManifest m = buildRunManifest("wslicer-sim corun", cfg,
                                             &registry, r.makespan);
            m.snapshot = restored;
            m.writeJson(os);
            std::printf("(wrote %s)\n", opt.manifestPath.c_str());
        }
    }
    return 0;
}

int
cmdServe(const Options &opt)
{
    if (!opt.benchNames.empty())
        usage("wslicer-sim");
    ServeOptions so;
    so.cfg = makeConfig(opt);
    if (opt.policy == "leftover")
        so.kind = PolicyKind::LeftOver;
    else if (opt.policy == "spatial")
        so.kind = PolicyKind::Spatial;
    else if (opt.policy == "even")
        so.kind = PolicyKind::Even;
    else if (opt.policy == "dynamic")
        so.kind = PolicyKind::Dynamic;
    else
        fatal("serve supports leftover|spatial|even|dynamic, not ",
              opt.policy);
    so.window = opt.cycles;
    so.horizon = opt.horizon;
    so.quantum = opt.quantum;
    so.maxBatch = opt.maxBatch;
    so.seed = opt.seed;
    so.arrivals.mode = opt.closedLoop
                           ? ArrivalConfig::Mode::ClosedLoop
                           : ArrivalConfig::Mode::OpenPoisson;
    so.arrivals.ratePer10k = opt.rate;
    so = resolveServeOptions(so);
    if (opt.chaosSeed != 0)
        so.chaos = FaultPlan::seeded(
            opt.chaosSeed, opt.chaosFaults, so.horizon,
            static_cast<unsigned>(so.classes.size()));
    DecisionLog decisions;
    if (!opt.decisionLogPath.empty())
        so.decisionLog = &decisions;

    const ServeResult r = runServe(so);

    Table table({"metric", "value"});
    table.addRow({"policy", opt.policy});
    table.addRow({"arrival_mode",
                  opt.closedLoop ? "closed-loop" : "open-poisson"});
    table.addRow({"seed", std::to_string(so.seed)});
    table.addRow({"horizon_cycles", std::to_string(so.horizon)});
    table.addRow({"end_cycle", std::to_string(r.endCycle)});
    table.addRow({"requests", std::to_string(r.jobs.size())});
    std::uint64_t completed = 0, goodput = 0, rejected = 0, shed = 0,
                  timed_out = 0, failed = 0, pending = 0;
    for (std::size_t t = 0; t < r.slo.numClasses(); ++t) {
        const ClassSlo &s = r.slo.of(static_cast<unsigned>(t));
        completed += s.completed;
        goodput += s.goodput;
        rejected += s.rejectedQueueFull + s.rejectedQuarantined +
                    s.rejectedMalformed;
        shed += s.shed;
        timed_out += s.timedOut;
        failed += s.failed;
        pending += s.pendingAtEnd;
    }
    table.addRow({"completed", std::to_string(completed)});
    table.addRow({"goodput", std::to_string(goodput)});
    table.addRow({"rejected", std::to_string(rejected)});
    table.addRow({"shed", std::to_string(shed)});
    table.addRow({"timed_out", std::to_string(timed_out)});
    table.addRow({"failed", std::to_string(failed)});
    table.addRow({"in_flight_at_end", std::to_string(pending)});
    table.addRow({"fairness_index", Table::num(r.fairness)});
    table.addRow({"slices", std::to_string(r.slices)});
    table.addRow({"rebuilds", std::to_string(r.rebuilds)});
    table.addRow({"live_launches", std::to_string(r.liveLaunches)});
    table.addRow({"preemptions", std::to_string(r.preemptions)});
    table.addRow({"faults_injected",
                  std::to_string(r.faultsInjected)});
    table.addRow({"snapshots", std::to_string(r.snapshots)});
    table.addRow({"restores", std::to_string(r.restores)});
    table.addRow({"retries", std::to_string(r.retries)});
    std::string quarantined;
    for (const std::string &name : r.quarantinedClasses)
        quarantined += (quarantined.empty() ? "" : ",") + name;
    table.addRow({"quarantined",
                  quarantined.empty() ? "none" : quarantined});
    table.addRow({"invariant_violations",
                  std::to_string(r.invariantViolations)});
    emit(opt, table);

    if (!opt.sloPath.empty()) {
        std::ofstream os(opt.sloPath);
        if (!os)
            fatal("cannot open ", opt.sloPath);
        r.slo.writeJson(os);
        std::printf("(wrote %s)\n", opt.sloPath.c_str());
    }
    if (!opt.decisionLogPath.empty()) {
        std::ofstream os(opt.decisionLogPath);
        if (!os)
            fatal("cannot open ", opt.decisionLogPath);
        decisions.writeJson(os);
        std::printf("(wrote %s, %zu decisions)\n",
                    opt.decisionLogPath.c_str(),
                    decisions.entries().size());
    }
    if (!opt.manifestPath.empty() || !opt.promPath.empty()) {
        CounterRegistry registry;
        r.slo.registerCounters(registry);
        registerHarnessCounters(registry);
        if (!opt.promPath.empty()) {
            std::ofstream os(opt.promPath);
            if (!os)
                fatal("cannot open ", opt.promPath);
            registry.writePrometheus(os);
            std::printf("(wrote %s)\n", opt.promPath.c_str());
        }
        if (!opt.manifestPath.empty()) {
            std::ofstream os(opt.manifestPath);
            if (!os)
                fatal("cannot open ", opt.manifestPath);
            RunManifest m = buildRunManifest(
                "wslicer-sim serve", so.cfg, &registry, r.endCycle);
            m.writeJson(os);
            std::printf("(wrote %s)\n", opt.manifestPath.c_str());
        }
    }
    // The chaos gate: injected faults must be survived gracefully;
    // an *organic* invariant violation is a real engine bug.
    return r.invariantViolations == 0 ? 0 : 1;
}

int
cmdCombos(const Options &opt)
{
    if (opt.benchNames.size() != 2)
        usage("wslicer-sim");
    const GpuConfig cfg = makeConfig(opt);
    const Cycle window = opt.cycles ? opt.cycles : defaultWindow() / 2;
    Characterization chars(cfg, window);
    std::vector<KernelParams> apps = {benchmark(opt.benchNames[0]),
                                      benchmark(opt.benchNames[1])};
    std::vector<std::uint64_t> targets = {
        chars.target(opt.benchNames[0]),
        chars.target(opt.benchNames[1])};
    const CoRunResult base =
        runCoSchedule(apps, targets, PolicyKind::LeftOver, cfg);

    const auto combos = enumerateFeasibleCombos(apps, cfg);
    std::vector<CoRunJob> batch;
    for (const auto &combo : combos) {
        CoRunJob job;
        job.apps = opt.benchNames;
        job.kind = PolicyKind::LeftOver;
        job.opts.fixedQuotas = combo;
        batch.push_back(job);
    }
    const std::vector<CoRunResult> results =
        runCoScheduleBatch(chars, batch, opt.jobs);

    Table table({"ctas_0", "ctas_1", "system_ipc", "vs_leftover"});
    unsigned failed = 0;
    for (std::size_t i = 0; i < combos.size(); ++i) {
        const CoRunResult &r = results[i];
        if (r.error.failed) {
            ++failed;
            table.addRow({std::to_string(combos[i][0]),
                          std::to_string(combos[i][1]),
                          "failed(" + r.error.kind + ")", "-"});
            std::fprintf(stderr,
                         "combo %d,%d failed (%s, %u retries): %s\n",
                         combos[i][0], combos[i][1],
                         r.error.kind.c_str(), r.error.retries,
                         r.error.message.c_str());
            continue;
        }
        table.addRow({std::to_string(combos[i][0]),
                      std::to_string(combos[i][1]),
                      Table::num(r.sysIpc),
                      Table::num(r.sysIpc / base.sysIpc)});
    }
    emit(opt, table);
    if (failed != 0) {
        std::fprintf(stderr, "%u of %zu combos failed\n", failed,
                     combos.size());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    if (!opt.tracePath.empty() || !opt.timelinePath.empty())
        Tracer::global().enable(1 << 20);
    int rc = 2;
    try {
        if (opt.command == "list")
            rc = cmdList(opt);
        else if (opt.command == "solo")
            rc = cmdSolo(opt);
        else if (opt.command == "curves")
            rc = cmdCurves(opt);
        else if (opt.command == "corun")
            rc = cmdCorun(opt);
        else if (opt.command == "combos")
            rc = cmdCombos(opt);
        else if (opt.command == "serve")
            rc = cmdServe(opt);
        else
            usage(argv[0]);
    } catch (const SimError &e) {
        // The process boundary for recoverable simulator errors:
        // report with the error's kind and exit non-zero instead of
        // unwinding into an abort.
        std::fprintf(stderr, "wslicer-sim: %s error: %s\n",
                     e.kindName(), e.what());
        if (const auto *dl = dynamic_cast<const DeadlockError *>(&e))
            std::fputs(dl->report().c_str(), stderr);
        return 1;
    }
    if (!opt.tracePath.empty()) {
        std::ofstream os(opt.tracePath);
        if (!os)
            fatal("cannot open ", opt.tracePath);
        Tracer::global().dump(os);
        std::printf("(wrote %s, %llu events)\n", opt.tracePath.c_str(),
                    static_cast<unsigned long long>(
                        Tracer::global().totalRecorded()));
    }
    return rc;
}
